package bench

import (
	"fmt"
	"time"

	"flashgraph/internal/algo"
	"flashgraph/internal/baseline/galois"
	"flashgraph/internal/baseline/powergraph"
	"flashgraph/internal/core"
	"flashgraph/internal/graph"
	"flashgraph/internal/safs"
)

// Apps is the paper's application set, in its order.
var Apps = []string{"BFS", "BC", "WCC", "PR", "TC", "SS"}

// bfsSource picks the highest out-degree vertex: a hub source reaches
// the bulk of a power-law graph, like the paper's traversals.
func bfsSource(img *graph.Image) graph.VertexID {
	best := graph.VertexID(0)
	var bestDeg uint32
	for v := 0; v < img.NumV; v++ {
		if d := img.OutIndex.Degree(graph.VertexID(v)); d > bestDeg {
			bestDeg = d
			best = graph.VertexID(v)
		}
	}
	return best
}

// newAlg instantiates the vertex program for an app name.
func newAlg(app string, img *graph.Image) core.Algorithm {
	switch app {
	case "BFS":
		return algo.NewBFS(bfsSource(img))
	case "BC":
		return algo.NewBC(bfsSource(img))
	case "WCC":
		return algo.NewWCC()
	case "PR":
		return algo.NewPageRank()
	case "TC":
		return algo.NewTC()
	case "SS":
		return algo.NewScanStat()
	}
	panic("bench: unknown app " + app)
}

// engineConfig builds the core config for one app run. Scan statistics
// uses the custom degree-descending scheduler (§3.7); everything else
// uses the default ID-ordered scheduler.
func engineConfig(cfg Config, app string) core.Config {
	ec := core.Config{Threads: cfg.Threads, RangeShift: 6}
	if app == "SS" {
		ec.Sched = core.SchedCustom
		ec.MaxRunning = 512 // batches small enough for pruning to bite
	}
	return ec
}

// runSEM runs one app on a dataset in semi-external memory with the
// given cache fraction, returning the stats. Engine, filesystem, and
// array are created fresh (experiments are isolated).
func runSEM(cfg Config, d *Dataset, app string, cacheFrac float64) (core.RunStats, error) {
	return runSEMPage(cfg, d, app, cacheFrac, 0, nil)
}

// runSEMPage additionally overrides the page size and engine mutator.
func runSEMPage(cfg Config, d *Dataset, app string, cacheFrac float64, pageSize int, mutate func(*core.Config)) (core.RunStats, error) {
	return runSEMBytes(cfg, d, app, cacheBytesFor(d, cacheFrac, pageSize), pageSize, mutate)
}

// runSEMBytes pins the cache to an absolute byte size — Figure 13 holds
// cache bytes constant while sweeping the page size, exactly as the
// paper keeps its 1GB cache across page sizes.
func runSEMBytes(cfg Config, d *Dataset, app string, cacheBytes int64, pageSize int, mutate func(*core.Config)) (core.RunStats, error) {
	fs, arr := newFS(cfg, cacheBytes, pageSize)
	defer arr.Close()
	ec := engineConfig(cfg, app)
	ec.FS = fs
	if mutate != nil {
		mutate(&ec)
	}
	eng, err := core.NewEngine(d.Img, ec)
	if err != nil {
		return core.RunStats{}, err
	}
	st, err := eng.Run(newAlg(app, d.Img))
	st.Algorithm = app
	return st, err
}

// runMem runs one app on the in-memory engine (FG-mem).
func runMem(cfg Config, d *Dataset, app string) (core.RunStats, error) {
	ec := engineConfig(cfg, app)
	ec.InMemory = true
	eng, err := core.NewEngine(d.Img, ec)
	if err != nil {
		return core.RunStats{}, err
	}
	st, err := eng.Run(newAlg(app, d.Img))
	st.Algorithm = app
	return st, err
}

// runGalois times the hand-optimized in-memory baseline.
func runGalois(d *Dataset, app string) (time.Duration, error) {
	ref := d.Ref()
	src := bfsSource(d.Img)
	start := time.Now()
	switch app {
	case "BFS":
		galois.BFS(ref, src)
	case "BC":
		galois.BC(ref, src)
	case "WCC":
		galois.WCC(ref)
	case "PR":
		galois.PageRankDelta(ref, 30, 0.85, 1e-7)
	case "TC":
		galois.TriangleCount(ref)
	case "SS":
		galois.ScanStat(ref)
	default:
		return 0, fmt.Errorf("bench: unknown app %s", app)
	}
	return time.Since(start), nil
}

// runPowerGraph times the GAS in-memory baseline.
func runPowerGraph(cfg Config, d *Dataset, app string) (time.Duration, error) {
	e := powergraph.New(d.Ref(), cfg.Threads)
	src := bfsSource(d.Img)
	start := time.Now()
	switch app {
	case "BFS":
		powergraph.RunBFS(e, src)
	case "BC":
		powergraph.RunBC(e, src)
	case "WCC":
		powergraph.RunWCC(e)
	case "PR":
		powergraph.RunPageRank(e, 30, 0.85, 1e-7)
	case "TC":
		powergraph.RunTC(e)
	case "SS":
		powergraph.RunScanStat(e)
	default:
		return 0, fmt.Errorf("bench: unknown app %s", app)
	}
	return time.Since(start), nil
}

// prPhases runs PageRank on SEM and splits stats at iteration 15 (the
// paper's PR1 = first 15 iterations, PR2 = last 15; Figure 9).
func prPhases(cfg Config, d *Dataset, cacheFrac float64) (pr1, pr2 core.RunStats, err error) {
	fs, arr := newFS(cfg, cacheBytesFor(d, cacheFrac, 0), 0)
	defer arr.Close()
	ec := engineConfig(cfg, "PR")
	ec.FS = fs
	eng, err := core.NewEngine(d.Img, ec)
	if err != nil {
		return
	}
	split := &prSplitter{PageRank: algo.NewPageRank(), fs: fs, at: 15}
	total, err := eng.Run(split)
	if err != nil {
		return
	}
	pr1 = split.firstStats
	pr1.Algorithm = "PR1"
	pr1.CPUUtil = total.CPUUtil
	pr2 = core.RunStats{
		Algorithm:   "PR2",
		Iterations:  total.Iterations - pr1.Iterations,
		Elapsed:     total.Elapsed - pr1.Elapsed,
		BytesRead:   total.BytesRead - pr1.BytesRead,
		DeviceReads: total.DeviceReads - pr1.DeviceReads,
		CacheHits:   total.CacheHits - pr1.CacheHits,
		CacheMisses: total.CacheMisses - pr1.CacheMisses,
		CPUUtil:     total.CPUUtil,
	}
	return
}

// prSplitter wraps PageRank with an iteration hook that snapshots the
// filesystem counters when the 15th iteration completes.
type prSplitter struct {
	*algo.PageRank
	fs *safs.FS
	at int

	start                time.Time
	baseHits, baseMisses int64
	baseReads, baseBytes int64
	firstStats           core.RunStats
	captured             bool
}

// Init implements core.Algorithm, capturing the baseline counters.
func (s *prSplitter) Init(eng core.ExecutionEngine) {
	s.PageRank.Init(eng)
	s.start = time.Now()
	cs := s.fs.Cache().Stats()
	as := s.fs.Array().Stats()
	s.baseHits, s.baseMisses = cs.Hits, cs.Misses
	s.baseReads, s.baseBytes = as.Reads, as.BytesRead
}

// OnIterationEnd implements core.IterationHook: snapshot after the
// `at`-th iteration.
func (s *prSplitter) OnIterationEnd(eng *core.Engine) {
	if s.captured || eng.Iteration() != s.at-1 {
		return
	}
	s.captured = true
	cs := s.fs.Cache().Stats()
	as := s.fs.Array().Stats()
	s.firstStats = core.RunStats{
		Iterations:  s.at,
		Elapsed:     time.Since(s.start),
		BytesRead:   as.BytesRead - s.baseBytes,
		DeviceReads: as.Reads - s.baseReads,
		CacheHits:   cs.Hits - s.baseHits,
		CacheMisses: cs.Misses - s.baseMisses,
	}
}
