package safs

import "encoding/binary"

// View is a window onto the page-cache frames covering one asynchronous
// read request. User tasks access the requested byte range through it —
// computation happens directly against cache pages (the paper's
// "general-purpose computation in the page cache") with copies only at
// page boundaries.
//
// Offsets passed to View methods are relative to the start of the
// requested range. A View is valid only inside its TaskFunc; the frames
// are unpinned when the task returns.
type View struct {
	pageSize int
	head     int   // offset of the requested range within the first frame
	length   int64 // requested length
	frames   []pageHandle
}

// Len returns the number of requested bytes.
func (v *View) Len() int64 { return v.length }

// locate maps a range-relative offset to (frame index, offset in frame).
func (v *View) locate(rel int64) (int, int) {
	abs := int64(v.head) + rel
	return int(abs / int64(v.pageSize)), int(abs % int64(v.pageSize))
}

// ReadAt copies bytes starting at rel into dst and returns the number
// copied (short only if the request range ends).
func (v *View) ReadAt(dst []byte, rel int64) int {
	if rel >= v.length {
		return 0
	}
	if max := v.length - rel; int64(len(dst)) > max {
		dst = dst[:max]
	}
	n := 0
	fi, fo := v.locate(rel)
	for n < len(dst) {
		frame := v.frames[fi].Data()
		c := copy(dst[n:], frame[fo:])
		n += c
		fi++
		fo = 0
	}
	return n
}

// Slice returns the bytes [rel, rel+n) without copying when the range
// lies within one frame; otherwise it copies into scratch (growing it if
// needed) and returns that. Use for decoding variable structures cheaply.
func (v *View) Slice(rel, n int64, scratch []byte) []byte {
	fi, fo := v.locate(rel)
	frame := v.frames[fi].Data()
	if fo+int(n) <= len(frame) {
		return frame[fo : fo+int(n)]
	}
	if int64(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	v.ReadAt(scratch, rel)
	return scratch
}

// Uint32 decodes a little-endian uint32 at rel, handling page crossings.
func (v *View) Uint32(rel int64) uint32 {
	fi, fo := v.locate(rel)
	frame := v.frames[fi].Data()
	if fo+4 <= len(frame) {
		return binary.LittleEndian.Uint32(frame[fo:])
	}
	var b [4]byte
	v.ReadAt(b[:], rel)
	return binary.LittleEndian.Uint32(b[:])
}

// Uint64 decodes a little-endian uint64 at rel, handling page crossings.
func (v *View) Uint64(rel int64) uint64 {
	fi, fo := v.locate(rel)
	frame := v.frames[fi].Data()
	if fo+8 <= len(frame) {
		return binary.LittleEndian.Uint64(frame[fo:])
	}
	var b [8]byte
	v.ReadAt(b[:], rel)
	return binary.LittleEndian.Uint64(b[:])
}

// Byte returns the byte at rel.
func (v *View) Byte(rel int64) byte {
	fi, fo := v.locate(rel)
	return v.frames[fi].Data()[fo]
}

// Sub returns a view of [rel, rel+n) of this view. Frames remain pinned
// by the parent; the sub-view is valid only while the parent is. This is
// how one merged I/O request serves many vertices: the engine slices the
// merged view per vertex.
func (v *View) Sub(rel, n int64) *View {
	fi, fo := v.locate(rel)
	return &View{
		pageSize: v.pageSize,
		head:     fo,
		length:   n,
		frames:   v.frames[fi:],
	}
}

// release unpins all frames; called by the IOContext after the task runs.
func (v *View) release() {
	for _, f := range v.frames {
		f.Unpin()
	}
	v.frames = nil
}
