package safs

import (
	"errors"
	"sync"
	"testing"

	"flashgraph/internal/ssd"
)

// failingStore fails reads after a configurable number of successes.
type failingStore struct {
	mu        sync.Mutex
	remaining int
	inner     *ssd.MemStore
}

var errInjected = errors.New("injected device failure")

func (f *failingStore) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.remaining <= 0 {
		return 0, errInjected
	}
	f.remaining--
	return f.inner.ReadAt(p, off)
}

func (f *failingStore) WriteAt(p []byte, off int64) (int, error) {
	return f.inner.WriteAt(p, off)
}

func (f *failingStore) Size() int64 { return f.inner.Size() }

func TestReadTaskPropagatesDeviceErrors(t *testing.T) {
	store := &failingStore{remaining: 0, inner: ssd.NewMemStore()}
	arr := ssd.NewArrayWithStores(ssd.ArrayParams{Devices: 1, StripeSize: 64 * 4096}, []ssd.Store{store})
	defer arr.Close()
	fs := New(arr, Config{})
	f, err := fs.Create("f", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	ctx := fs.NewContext()
	var got error
	ran := false
	ctx.ReadTask(f, 0, 4096, func(v *View, err error) {
		ran = true
		got = err
	})
	ctx.Drain()
	if !ran {
		t.Fatal("task did not run on error")
	}
	if !errors.Is(got, errInjected) {
		t.Fatalf("err = %v, want injected failure", got)
	}
}

func TestReadTaskPartialFailureStillCompletes(t *testing.T) {
	// First few pages succeed, later pages fail: the task must still
	// fire exactly once, with the error.
	store := &failingStore{remaining: 2, inner: ssd.NewMemStore()}
	if _, err := store.WriteAt(make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	store.remaining = 2
	arr := ssd.NewArrayWithStores(ssd.ArrayParams{Devices: 1, StripeSize: 4096}, []ssd.Store{store})
	defer arr.Close()
	fs := New(arr, Config{})
	f, err := fs.Create("f", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx := fs.NewContext()
	calls := 0
	var got error
	ctx.ReadTask(f, 0, 8*4096, func(v *View, err error) {
		calls++
		got = err
	})
	ctx.Drain()
	if calls != 1 {
		t.Fatalf("task fired %d times, want 1", calls)
	}
	if got == nil {
		t.Fatal("expected error from failing pages")
	}
}

func TestReadTaskPanicsOutOfBounds(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, _ := fs.Create("f", 100)
	ctx := fs.NewContext()
	for _, c := range []struct{ off, n int64 }{{-1, 10}, {95, 10}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ReadTask(%d, %d) did not panic", c.off, c.n)
				}
			}()
			ctx.ReadTask(f, c.off, c.n, func(*View, error) {})
		}()
	}
}

func TestErrorPageNotCachedAsValid(t *testing.T) {
	// After a failed load, a retry must re-attempt the device read
	// rather than serving poisoned cache contents silently. Our cache
	// completes the frame with the error; subsequent readers see the
	// error too (write-once graph images make retry-at-higher-level the
	// right policy). Verify the error is consistently reported.
	store := &failingStore{remaining: 0, inner: ssd.NewMemStore()}
	arr := ssd.NewArrayWithStores(ssd.ArrayParams{Devices: 1, StripeSize: 64 * 4096}, []ssd.Store{store})
	defer arr.Close()
	fs := New(arr, Config{})
	f, _ := fs.Create("f", 64<<10)
	ctx := fs.NewContext()
	errs := 0
	for i := 0; i < 2; i++ {
		ctx.ReadTask(f, 0, 100, func(v *View, err error) {
			if err != nil {
				errs++
			}
		})
		ctx.Drain()
	}
	if errs != 2 {
		t.Fatalf("errors reported %d of 2 attempts", errs)
	}
}
