package safs

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"flashgraph/internal/ssd"
)

// TestMergeSAFSAdversarialInterleavings drives the batched MergeSAFS
// flush with deliberately hostile request orders — reversed, strided,
// and cross-file interleaved — and asserts two things: the staged
// loads merge down to the minimum number of device requests (the sort
// at Flush plus device-level coalescing undo any submission order),
// and every page's bytes are bit-identical to what was written.
func TestMergeSAFSAdversarialInterleavings(t *testing.T) {
	const pageSize = 4096
	const pagesPerFile = 24
	orders := map[string]func(n int) []int{
		"reversed": func(n int) []int {
			o := make([]int, n)
			for i := range o {
				o[i] = n - 1 - i
			}
			return o
		},
		"strided": func(n int) []int {
			var o []int
			for s := 0; s < 3; s++ {
				for i := s; i < n; i += 3 {
					o = append(o, i)
				}
			}
			return o
		},
		"shuffled": func(n int) []int {
			o := rand.New(rand.NewSource(42)).Perm(n)
			return o
		},
	}
	for name, order := range orders {
		t.Run(name, func(t *testing.T) {
			// One device, one big stripe: the two files are adjacent in
			// array space, so a full merge is exactly ONE device request.
			a := ssd.NewArray(ssd.ArrayParams{Devices: 1, StripeSize: 1 << 20})
			defer a.Close()
			fs := New(a, Config{Merge: MergeSAFS, CacheBytes: 4 << 20, PageSize: pageSize})

			files := make([]*File, 2)
			want := make([][]byte, 2)
			for fi := range files {
				f, err := fs.Create(fmt.Sprintf("f%d", fi), pagesPerFile*pageSize)
				if err != nil {
					t.Fatal(err)
				}
				data := make([]byte, pagesPerFile*pageSize)
				for i := range data {
					data[i] = byte(i*31 + 7*fi + 3)
				}
				if err := f.WriteAt(data, 0); err != nil {
					t.Fatal(err)
				}
				files[fi] = f
				want[fi] = data
			}
			a.ResetStats()

			// One ReadTask per page, issued in the adversarial order and
			// interleaved across the two files.
			ctx := fs.NewContext()
			got := make([][]byte, 2)
			for fi := range got {
				got[fi] = make([]byte, pagesPerFile*pageSize)
			}
			for _, pn := range order(pagesPerFile) {
				for fi, f := range files {
					fi, pn := fi, pn
					ctx.ReadTask(f, int64(pn)*pageSize, pageSize, func(v *View, err error) {
						if err != nil {
							t.Error(err)
							return
						}
						v.ReadAt(got[fi][pn*pageSize:(pn+1)*pageSize], 0)
					})
				}
			}
			ctx.Flush()
			ctx.Drain()

			for fi := range got {
				if !bytes.Equal(got[fi], want[fi]) {
					t.Fatalf("file %d: page contents diverge after merged flush", fi)
				}
			}
			st := a.Stats()
			// All 48 staged pages are contiguous in array space: Flush
			// sorts them by (file, page) and the device coalesces the two
			// file runs, so the whole sweep is one vectored request.
			if st.Reads != 1 {
				t.Fatalf("device reads = %d, want 1 (full cross-request merge)", st.Reads)
			}
			if st.VecReads != 1 {
				t.Fatalf("VecReads = %d, want 1", st.VecReads)
			}
			if st.BatchedReqs != 2 || st.CoalescedReqs != 1 {
				t.Fatalf("batch counters = %d batched / %d coalesced, want 2/1 (one group per file, merged at the device)",
					st.BatchedReqs, st.CoalescedReqs)
			}
		})
	}
}

// TestMergeSAFSPartialRuns checks merged extent counts when the staged
// pages do NOT form one contiguous run: each gap costs exactly one more
// device request, never a wrong page.
func TestMergeSAFSPartialRuns(t *testing.T) {
	const pageSize = 4096
	a := ssd.NewArray(ssd.ArrayParams{Devices: 1, StripeSize: 1 << 20})
	defer a.Close()
	fs := New(a, Config{Merge: MergeSAFS, CacheBytes: 4 << 20, PageSize: pageSize})
	f, err := fs.Create("f", 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64*pageSize)
	for i := range data {
		data[i] = byte(i*13 + 1)
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	a.ResetStats()

	// Three runs with gaps: [0..3], [8..9], [40]. Issued interleaved.
	pages := []int{40, 0, 8, 2, 9, 1, 3}
	ctx := fs.NewContext()
	got := make(map[int][]byte, len(pages))
	for _, pn := range pages {
		pn := pn
		buf := make([]byte, pageSize)
		got[pn] = buf
		ctx.ReadTask(f, int64(pn)*pageSize, pageSize, func(v *View, err error) {
			if err != nil {
				t.Error(err)
				return
			}
			v.ReadAt(buf, 0)
		})
	}
	ctx.Flush()
	ctx.Drain()

	for pn, buf := range got {
		if !bytes.Equal(buf, data[pn*pageSize:(pn+1)*pageSize]) {
			t.Fatalf("page %d bytes diverge", pn)
		}
	}
	if st := a.Stats(); st.Reads != 3 {
		t.Fatalf("device reads = %d, want 3 (one per contiguous run)", st.Reads)
	}
}

// TestDirectFileStoreBackedSAFS runs the semi-external-memory stack
// over DirectFileStore devices — the raw I/O configuration fg-serve
// -direct builds. Where the filesystem rejects O_DIRECT (tmpfs CI) the
// store degrades to its fadvise fallback and the test still validates
// that path; it never fails for lack of kernel support.
func TestDirectFileStoreBackedSAFS(t *testing.T) {
	dir := t.TempDir()
	const devices = 3
	stores := make([]ssd.Store, devices)
	direct := true
	for i := range stores {
		ds, err := ssd.NewDirectFileStore(filepath.Join(dir, fmt.Sprintf("dev%d.dat", i)), ssd.StoreConfig{DirectIO: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ds.Close() })
		direct = direct && ds.Direct()
		stores[i] = ds
	}
	if !direct {
		t.Log("O_DIRECT unsupported here (tmpfs?); exercising the buffered fadvise fallback")
	}
	arr := ssd.NewArrayWithStores(ssd.ArrayParams{Devices: devices, StripeSize: 8192}, stores)
	t.Cleanup(arr.Close)
	fs := New(arr, Config{Merge: MergeSAFS, CacheBytes: 256 << 10, PageSize: 4096})

	const written = 37*4096 + 123
	f, err := fs.Create("g.adj", 40*4096)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, written)
	for i := range data {
		data[i] = byte(i*17 + 5)
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	// Async path with merged flush, covering written and thin (post-EOF)
	// pages, then the synchronous path as a cross-check.
	ctx := fs.NewContext()
	got := make([]byte, 40*4096)
	for pn := 0; pn < 40; pn += 2 { // gaps force several merged runs
		pn := pn
		ctx.ReadTask(f, int64(pn)*4096, 4096, func(v *View, err error) {
			if err != nil {
				t.Error(err)
				return
			}
			v.ReadAt(got[pn*4096:(pn+1)*4096], 0)
		})
	}
	ctx.Flush()
	ctx.Drain()
	for pn := 0; pn < 40; pn += 2 {
		lo := pn * 4096
		for i := lo; i < lo+4096; i++ {
			want := byte(0)
			if i < written {
				want = data[i]
			}
			if got[i] != want {
				t.Fatalf("byte %d = %d, want %d (direct-store async read)", i, got[i], want)
			}
		}
	}
	sync := make([]byte, 40*4096)
	if err := f.ReadAt(sync, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sync[:written], data) {
		t.Fatal("direct-store synchronous read diverges from written data")
	}
	for i := written; i < len(sync); i++ {
		if sync[i] != 0 {
			t.Fatalf("unwritten byte %d = %d, want 0 (thin zero fill)", i, sync[i])
		}
	}
}
