package safs

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"
	"testing"
	"testing/quick"

	"flashgraph/internal/ssd"
)

func newFS(t *testing.T, cfg Config) (*FS, *ssd.Array) {
	t.Helper()
	a := ssd.NewArray(ssd.ArrayParams{Devices: 4, StripeSize: 16 * 4096})
	t.Cleanup(a.Close)
	return New(a, cfg), a
}

func writePattern(t *testing.T, f *File, size int64) []byte {
	t.Helper()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCreateOpen(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, err := fs.Create("graph.adj", 100000)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100000 || f.Name() != "graph.adj" {
		t.Fatalf("file = %q size %d", f.Name(), f.Size())
	}
	if _, err := fs.Create("graph.adj", 10); err == nil {
		t.Fatal("duplicate Create should fail")
	}
	g, err := fs.Open("graph.adj")
	if err != nil || g != f {
		t.Fatalf("Open = %v, %v", g, err)
	}
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("Open missing should fail")
	}
}

func TestFilesDoNotOverlap(t *testing.T) {
	fs, _ := newFS(t, Config{})
	a, _ := fs.Create("a", 5000) // 2 pages
	b, _ := fs.Create("b", 5000)
	da := bytes.Repeat([]byte{0xAA}, 5000)
	db := bytes.Repeat([]byte{0xBB}, 5000)
	if err := a.WriteAt(da, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteAt(db, 0); err != nil {
		t.Fatal(err)
	}
	ga := make([]byte, 5000)
	gb := make([]byte, 5000)
	if err := a.ReadAt(ga, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadAt(gb, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga, da) || !bytes.Equal(gb, db) {
		t.Fatal("files overlap or corrupt")
	}
}

func TestWriteBounds(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, _ := fs.Create("f", 100)
	if err := f.WriteAt(make([]byte, 101), 0); err == nil {
		t.Fatal("out-of-bounds write should fail")
	}
	if err := f.ReadAt(make([]byte, 10), 95); err == nil {
		t.Fatal("out-of-bounds read should fail")
	}
}

func TestReadTaskBasic(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, _ := fs.Create("f", 64<<10)
	data := writePattern(t, f, 64<<10)

	ctx := fs.NewContext()
	got := make([]byte, 1000)
	ran := false
	ctx.ReadTask(f, 5000, 1000, func(v *View, err error) {
		if err != nil {
			t.Error(err)
		}
		if v.Len() != 1000 {
			t.Errorf("view len = %d", v.Len())
		}
		v.ReadAt(got, 0)
		ran = true
	})
	ctx.Drain()
	if !ran {
		t.Fatal("task did not run")
	}
	if !bytes.Equal(got, data[5000:6000]) {
		t.Fatal("task saw wrong bytes")
	}
}

func TestReadTaskCrossesPages(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, _ := fs.Create("f", 64<<10)
	data := writePattern(t, f, 64<<10)

	ctx := fs.NewContext()
	// Range spans pages 0..3 with odd head/tail.
	const off, n = 4090, 3*4096 + 13
	got := make([]byte, n)
	ctx.ReadTask(f, off, n, func(v *View, err error) {
		if err != nil {
			t.Error(err)
		}
		v.ReadAt(got, 0)
	})
	ctx.Drain()
	if !bytes.Equal(got, data[off:off+n]) {
		t.Fatal("cross-page read mismatch")
	}
}

func TestReadTaskCacheHitSecondTime(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, _ := fs.Create("f", 1<<20)
	writePattern(t, f, 1<<20)

	ctx := fs.NewContext()
	run := func() {
		ctx.ReadTask(f, 0, 8192, func(v *View, err error) {})
		ctx.Drain()
	}
	run()
	missesAfterFirst := fs.Cache().Stats().Misses
	readsAfterFirst := fs.Array().Stats().Reads
	run()
	if got := fs.Cache().Stats().Misses; got != missesAfterFirst {
		t.Fatalf("second read missed cache: %d -> %d", missesAfterFirst, got)
	}
	if got := fs.Array().Stats().Reads; got != readsAfterFirst {
		t.Fatalf("second read hit the device: %d -> %d", readsAfterFirst, got)
	}
	if fs.Cache().Stats().Hits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestReadTaskContiguousRunIsOneRequest(t *testing.T) {
	// 8 pages within one stripe must be fetched as a single device
	// request (vectored), not 8.
	a := ssd.NewArray(ssd.ArrayParams{Devices: 1, StripeSize: 64 * 4096})
	defer a.Close()
	fs := New(a, Config{})
	f, _ := fs.Create("f", 1<<20)
	if err := f.WriteAt(make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	a.ResetStats()
	ctx := fs.NewContext()
	ctx.ReadTask(f, 0, 8*4096, func(v *View, err error) {})
	ctx.Drain()
	if got := a.Stats().Reads; got != 1 {
		t.Fatalf("device reads = %d, want 1 (vectored fill)", got)
	}
}

func TestMergeSAFSCombinesAcrossRequests(t *testing.T) {
	// Two per-vertex requests on adjacent pages: with MergeSAFS they
	// become one device request at Flush; with MergeNone, two.
	countReads := func(merge MergeMode) int64 {
		a := ssd.NewArray(ssd.ArrayParams{Devices: 1, StripeSize: 64 * 4096})
		defer a.Close()
		fs := New(a, Config{Merge: merge})
		f, _ := fs.Create("f", 1<<20)
		if err := f.WriteAt(make([]byte, 1<<20), 0); err != nil {
			t.Fatal(err)
		}
		a.ResetStats()
		ctx := fs.NewContext()
		ctx.ReadTask(f, 0, 4096, func(v *View, err error) {})
		ctx.ReadTask(f, 4096, 4096, func(v *View, err error) {})
		ctx.Drain()
		return a.Stats().Reads
	}
	if got := countReads(MergeNone); got != 2 {
		t.Fatalf("MergeNone reads = %d, want 2", got)
	}
	if got := countReads(MergeSAFS); got != 1 {
		t.Fatalf("MergeSAFS reads = %d, want 1", got)
	}
}

func TestManyInflightTasks(t *testing.T) {
	fs, _ := newFS(t, Config{CacheBytes: 1 << 20})
	f, _ := fs.Create("f", 4<<20)
	data := writePattern(t, f, 4<<20)

	ctx := fs.NewContext()
	var completedCount int64
	const tasks = 500
	for i := 0; i < tasks; i++ {
		off := int64(i) * 8000 % (4<<20 - 128)
		want := data[off]
		ctx.ReadTask(f, off, 128, func(v *View, err error) {
			if err != nil {
				t.Error(err)
				return
			}
			if v.Byte(0) != want {
				t.Errorf("task at %d saw %d want %d", off, v.Byte(0), want)
			}
			atomic.AddInt64(&completedCount, 1)
		})
	}
	ctx.Drain()
	if completedCount != tasks {
		t.Fatalf("completed %d of %d tasks", completedCount, tasks)
	}
}

func TestWaitAnyAndPoll(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, _ := fs.Create("f", 1<<20)
	writePattern(t, f, 1<<20)
	ctx := fs.NewContext()
	if n := ctx.Poll(); n != 0 {
		t.Fatalf("Poll on idle ctx = %d", n)
	}
	if n := ctx.WaitAny(); n != 0 {
		t.Fatalf("WaitAny on idle ctx = %d", n)
	}
	ran := 0
	for i := 0; i < 10; i++ {
		ctx.ReadTask(f, int64(i)*4096, 100, func(v *View, err error) { ran++ })
	}
	total := 0
	for total < 10 {
		n := ctx.WaitAny()
		if n == 0 {
			break
		}
		total += n
	}
	if ran != 10 || total != 10 {
		t.Fatalf("ran=%d total=%d", ran, total)
	}
}

func TestViewSliceZeroCopy(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, _ := fs.Create("f", 64<<10)
	data := writePattern(t, f, 64<<10)
	ctx := fs.NewContext()
	ctx.ReadTask(f, 100, 8000, func(v *View, err error) {
		// Within one page: no copy needed.
		s := v.Slice(0, 100, nil)
		if !bytes.Equal(s, data[100:200]) {
			t.Error("slice mismatch (single page)")
		}
		// Crossing a page boundary (page 0 ends at file offset 4096,
		// i.e. rel 3996).
		s2 := v.Slice(3990, 20, nil)
		if !bytes.Equal(s2, data[4090:4110]) {
			t.Error("slice mismatch (crossing)")
		}
	})
	ctx.Drain()
}

func TestViewIntegers(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, _ := fs.Create("f", 64<<10)
	data := make([]byte, 64<<10)
	for i := 0; i+4 <= len(data); i += 4 {
		binary.LittleEndian.PutUint32(data[i:], uint32(i))
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	ctx := fs.NewContext()
	ctx.ReadTask(f, 0, 16<<10, func(v *View, err error) {
		if got := v.Uint32(0); got != 0 {
			t.Errorf("Uint32(0) = %d", got)
		}
		if got := v.Uint32(4096 - 2); got != binary.LittleEndian.Uint32(data[4094:]) {
			t.Errorf("cross-page Uint32 = %d", got)
		}
		if got := v.Uint64(8); got != binary.LittleEndian.Uint64(data[8:]) {
			t.Errorf("Uint64 = %d", got)
		}
	})
	ctx.Drain()
}

func TestViewSub(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, _ := fs.Create("f", 64<<10)
	data := writePattern(t, f, 64<<10)
	ctx := fs.NewContext()
	ctx.ReadTask(f, 0, 32<<10, func(v *View, err error) {
		sub := v.Sub(10000, 500)
		if sub.Len() != 500 {
			t.Errorf("sub len = %d", sub.Len())
		}
		got := make([]byte, 500)
		sub.ReadAt(got, 0)
		if !bytes.Equal(got, data[10000:10500]) {
			t.Error("sub-view mismatch")
		}
		if sub.Byte(499) != data[10499] {
			t.Error("sub Byte mismatch")
		}
	})
	ctx.Drain()
}

func TestViewQuickReadAt(t *testing.T) {
	fs, _ := newFS(t, Config{})
	f, _ := fs.Create("f", 1<<20)
	data := writePattern(t, f, 1<<20)
	ctx := fs.NewContext()
	prop := func(offRaw, lenRaw uint32, relRaw uint16) bool {
		off := int64(offRaw) % (1<<20 - 20000)
		n := int64(lenRaw)%19000 + 1
		rel := int64(relRaw) % n
		okResult := true
		ctx.ReadTask(f, off, n, func(v *View, err error) {
			if err != nil {
				okResult = false
				return
			}
			m := n - rel
			if m > 64 {
				m = 64
			}
			got := make([]byte, m)
			v.ReadAt(got, rel)
			okResult = bytes.Equal(got, data[off+rel:off+rel+m])
		})
		ctx.Drain()
		return okResult
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPageSizeConfig(t *testing.T) {
	for _, ps := range []int{1024, 4096, 16384} {
		fs, _ := newFS(t, Config{PageSize: ps})
		if fs.PageSize() != ps {
			t.Fatalf("PageSize = %d, want %d", fs.PageSize(), ps)
		}
		f, _ := fs.Create("f", 256<<10)
		data := writePattern(t, f, 256<<10)
		ctx := fs.NewContext()
		got := make([]byte, 3*ps)
		ctx.ReadTask(f, int64(ps/2), int64(3*ps), func(v *View, err error) {
			v.ReadAt(got, 0)
		})
		ctx.Drain()
		if !bytes.Equal(got, data[ps/2:ps/2+3*ps]) {
			t.Fatalf("page size %d: data mismatch", ps)
		}
	}
}

func TestReadTaskMinIOIsOnePage(t *testing.T) {
	// A 1-byte request still reads one whole flash page (the paper's
	// minimum I/O block).
	a := ssd.NewArray(ssd.ArrayParams{Devices: 1, StripeSize: 64 * 4096})
	defer a.Close()
	fs := New(a, Config{})
	f, _ := fs.Create("f", 1<<20)
	if err := f.WriteAt(make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	a.ResetStats()
	ctx := fs.NewContext()
	ctx.ReadTask(f, 5, 1, func(v *View, err error) {})
	ctx.Drain()
	if got := a.Stats().BytesRead; got != 4096 {
		t.Fatalf("bytes read = %d, want one 4KB page", got)
	}
}
