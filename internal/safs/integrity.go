package safs

// End-to-end read integrity: SAFS files can carry per-extent CRC32C
// checksums (computed at image-build time and persisted in the image
// container). Every read path — synchronous ReadAt and asynchronous
// page loads — verifies the covered extents before data reaches a
// caller, so a flipped bit on an SSD surfaces as a typed
// CorruptionError instead of a silently wrong result.

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupted is the sentinel every checksum-mismatch error matches
// with errors.Is. It means the bytes read from the array do not match
// the checksum recorded when the file was written: the storage (or an
// injected fault) corrupted data, and the read result must not be used.
var ErrCorrupted = errors.New("safs: data corruption detected")

// CorruptionError reports a checksum mismatch on one extent of a file.
type CorruptionError struct {
	File   string // SAFS file name
	Extent int    // extent index within the file
	Off    int64  // extent byte offset within the file
	Want   uint32 // recorded CRC32C
	Got    uint32 // computed CRC32C
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("safs: corruption in %q extent %d at offset %d: crc32c %08x, want %08x",
		e.File, e.Extent, e.Off, e.Got, e.Want)
}

// Is makes errors.Is(err, ErrCorrupted) match.
func (e *CorruptionError) Is(target error) bool { return target == ErrCorrupted }

// SetChecksums arms read verification for f: sums holds one CRC32C per
// extentSize-byte extent of the file (the last extent covers only the
// bytes up to the file size). Call after the file is fully written
// (files are write-once). A nil sums disarms verification.
func (f *File) SetChecksums(sums []uint32, extentSize int) {
	if sums == nil || extentSize <= 0 {
		f.sums, f.extSize = nil, 0
		return
	}
	want := int((f.size + int64(extentSize) - 1) / int64(extentSize))
	if len(sums) != want {
		panic(fmt.Sprintf("safs: file %q size %d needs %d checksums of extent %d, got %d",
			f.name, f.size, want, extentSize, len(sums)))
	}
	f.sums = sums
	f.extSize = int64(extentSize)
}

// Checksummed reports whether reads of f are verified.
func (f *File) Checksummed() bool { return f.sums != nil }

// verifyPage checks the extents covered by one whole cache page
// (page-aligned, clipped to the file size). Pages verify exactly when
// the extent size divides the page size; otherwise a single page does
// not cover whole extents and the async path cannot verify (the
// synchronous VerifyRange still can).
func (f *File) verifyPage(pageNo int64, data []byte) error {
	if f.sums == nil {
		return nil
	}
	ps := int64(f.fs.pageSize)
	if ps%f.extSize != 0 {
		return nil
	}
	off := pageNo * ps
	end := off + ps
	if end > f.size {
		end = f.size
	}
	if off >= end {
		return nil // page wholly past the data (size rounded up to pages)
	}
	return f.verifyAligned(data[:end-off], off)
}

// verifyAligned checks data read from extent-aligned offset off and
// extending to an extent boundary or the end of the file.
func (f *File) verifyAligned(data []byte, off int64) error {
	for len(data) > 0 {
		n := f.extSize
		if int64(len(data)) < n {
			n = int64(len(data))
		}
		idx := int(off / f.extSize)
		if got := crc32.Checksum(data[:n], castagnoli); got != f.sums[idx] {
			return &CorruptionError{File: f.name, Extent: idx, Off: off, Want: f.sums[idx], Got: got}
		}
		data = data[n:]
		off += n
	}
	return nil
}

// VerifyRange checks every extent overlapping [off, off+len(p)), where
// p holds the bytes read from that range. Boundary extents only partly
// covered by p are completed with small synchronous pad reads, so
// arbitrary (unaligned) reads — SpMV stripe sweeps — still verify
// end to end. No-op when the file carries no checksums.
func (f *File) VerifyRange(p []byte, off int64) error {
	if f.sums == nil || len(p) == 0 {
		return nil
	}
	ext := f.extSize
	end := off + int64(len(p))
	var scratch []byte
	for eo := off - off%ext; eo < end; eo += ext {
		ee := eo + ext
		if ee > f.size {
			ee = f.size
		}
		crc := uint32(0)
		if eo < off {
			// Head pad: extent bytes before the caller's range.
			pad, err := f.readPad(&scratch, eo, off)
			if err != nil {
				return err
			}
			crc = crc32.Update(crc, castagnoli, pad)
		}
		lo, hi := eo, ee
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		crc = crc32.Update(crc, castagnoli, p[lo-off:hi-off])
		if ee > end {
			// Tail pad: extent bytes after the caller's range.
			pad, err := f.readPad(&scratch, end, ee)
			if err != nil {
				return err
			}
			crc = crc32.Update(crc, castagnoli, pad)
		}
		idx := int(eo / ext)
		if crc != f.sums[idx] {
			return &CorruptionError{File: f.name, Extent: idx, Off: eo, Want: f.sums[idx], Got: crc}
		}
	}
	return nil
}

// readPad reads [lo, hi) of the file into (a slice of) *scratch via the
// raw array path (no re-verification).
func (f *File) readPad(scratch *[]byte, lo, hi int64) ([]byte, error) {
	n := hi - lo
	if int64(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	buf := (*scratch)[:n]
	if err := f.fs.array.ReadAt(buf, f.base+lo); err != nil {
		return nil, fmt.Errorf("safs: verify pad read of %q [%d,%d): %w", f.name, lo, hi, err)
	}
	return buf, nil
}
