package safs

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"flashgraph/internal/ssd"
)

// TestFileStoreBackedArrayRoundTrip is the regression test for
// FileStore's EOF handling observed through the full stack: a SAFS
// instance over an array of FileStore-backed devices (the "graphs
// larger than RAM" configuration) must round-trip file contents both
// through synchronous reads and through the async ReadTask path,
// including reads of pages the backing files have never been extended
// to cover (thin provisioning → zero fill).
func TestFileStoreBackedArrayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const devices = 3
	stores := make([]ssd.Store, devices)
	for i := range stores {
		fs, err := ssd.NewFileStore(filepath.Join(dir, fmt.Sprintf("dev%d.dat", i)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fs.Close() })
		stores[i] = fs
	}
	arr := ssd.NewArrayWithStores(ssd.ArrayParams{Devices: devices, StripeSize: 4096}, stores)
	t.Cleanup(arr.Close)
	fs := New(arr, Config{CacheBytes: 64 << 10, PageSize: 4096})

	// A file whose tail pages are never written: the create rounds the
	// allocation up, and reads of those pages hit the stores past EOF.
	const written = 3*4096 + 123
	f, err := fs.Create("g.adj", 6*4096)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, written)
	for i := range data {
		data[i] = byte(i*13 + 1)
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	// Synchronous path.
	got := make([]byte, 6*4096)
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:written], data) {
		t.Fatal("FileStore-backed synchronous read returned wrong bytes")
	}
	for i := written; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("unwritten byte %d = %d, want 0 (EOF zero fill)", i, got[i])
		}
	}

	// Async user-task path through the page cache, spanning the
	// written/unwritten boundary.
	ctx := fs.NewContext()
	var taskErr error
	var viewBytes []byte
	ctx.ReadTask(f, 2*4096, 3*4096, func(v *View, err error) {
		taskErr = err
		viewBytes = make([]byte, 3*4096)
		copy(viewBytes, v.Slice(0, 3*4096, viewBytes))
	})
	ctx.Drain()
	if taskErr != nil {
		t.Fatalf("ReadTask over FileStore-backed array failed: %v", taskErr)
	}
	want := append(append([]byte{}, data[2*4096:]...), make([]byte, 3*4096-(written-2*4096))...)
	if !bytes.Equal(viewBytes, want) {
		t.Fatal("ReadTask view bytes diverge from written data")
	}
}
