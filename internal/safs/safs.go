// Package safs implements the set-associative file system (SAFS) of
// Zheng et al. ("Toward millions of file system IOPS on low-cost,
// commodity hardware", SC'13), the substrate FlashGraph runs on
// (FAST'15 §3.1).
//
// SAFS is a user-space filesystem library layered over an SSD array. It
// contributes three things FlashGraph depends on:
//
//   - dedicated per-SSD I/O goroutines fed by message passing (the ssd
//     package), avoiding kernel block-layer lock contention;
//   - a scalable set-associative page cache (the pagecache package);
//   - an asynchronous *user-task* I/O interface: instead of reading into
//     caller-allocated buffers, the caller attaches a task to each read
//     request, and the task executes against the cache pages directly
//     once they are resident — no buffer allocation, no copy, and
//     computation overlaps I/O.
//
// Completion tasks are executed on the goroutine that polls the caller's
// IOContext (mirroring SAFS delivering AIO completions to the issuing
// thread), so a graph-engine worker always runs its vertex programs
// itself.
package safs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"flashgraph/internal/pagecache"
	"flashgraph/internal/ssd"
)

// MergeMode controls where adjacent page loads are merged into larger
// device requests. FlashGraph's design (§3.6, Figure 12) merges in the
// graph engine; merging in SAFS and not merging at all are retained for
// the ablation.
type MergeMode int

const (
	// MergeNone issues one device request per page run within a single
	// ReadTask only (no cross-request merging).
	MergeNone MergeMode = iota
	// MergeSAFS defers page loads until Flush, then sorts and merges
	// adjacent loads across all staged requests of the IOContext.
	MergeSAFS
	// MergePage issues every page load as its own device request, with
	// no grouping even inside a single ReadTask — the per-page-dispatch
	// baseline the merged/vectored submission path is measured against.
	MergePage
)

// Config configures a filesystem instance.
type Config struct {
	// PageSize is the cache/IO granularity (default 4KiB). The paper
	// sweeps this in Figure 13.
	PageSize int
	// CacheBytes sizes the page cache (default 64MiB).
	CacheBytes int64
	// CacheAssoc is the page-cache associativity (default 8).
	CacheAssoc int
	// Merge selects where loads are merged (default MergeNone; the
	// engine's own merging makes its requests contiguous already).
	Merge MergeMode
}

// FS is one SAFS instance over an SSD array.
type FS struct {
	array    *ssd.Array
	cache    *pagecache.Cache
	pageSize int
	merge    MergeMode

	mu     sync.Mutex
	files  map[string]*File
	nextID uint32
	alloc  int64 // next free array offset (page aligned)
}

// New creates a filesystem over array.
func New(array *ssd.Array, cfg Config) *FS {
	if cfg.PageSize == 0 {
		cfg.PageSize = pagecache.DefaultPageSize
	}
	cache := pagecache.New(pagecache.Config{
		TotalBytes: cfg.CacheBytes,
		PageSize:   cfg.PageSize,
		Assoc:      cfg.CacheAssoc,
	})
	return &FS{
		array:    array,
		cache:    cache,
		pageSize: cfg.PageSize,
		merge:    cfg.Merge,
		files:    make(map[string]*File),
	}
}

// PageSize returns the I/O granularity in bytes.
func (fs *FS) PageSize() int { return fs.pageSize }

// Cache exposes the page cache (stats, capacity).
func (fs *FS) Cache() *pagecache.Cache { return fs.cache }

// Array exposes the underlying device array (stats).
func (fs *FS) Array() *ssd.Array { return fs.array }

// File is a write-once SAFS file: graph images are written during load
// and only read during computation (FlashGraph minimizes SSD wearout by
// never writing during execution).
type File struct {
	fs   *FS
	id   uint32
	name string
	base int64
	size int64

	// Per-extent CRC32C read verification (see integrity.go); nil sums
	// means reads are unverified. Set once via SetChecksums after the
	// file is written, before the first read.
	sums    []uint32
	extSize int64
}

// Create allocates a file of the given size (rounded up to whole pages).
func (fs *FS) Create(name string, size int64) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("safs: file %q exists", name)
	}
	ps := int64(fs.pageSize)
	alloc := (size + ps - 1) / ps * ps
	f := &File{fs: fs, id: fs.nextID, name: name, base: fs.alloc, size: size}
	fs.nextID++
	fs.alloc += alloc
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("safs: file %q not found", name)
	}
	return f, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file length in bytes.
func (f *File) Size() int64 { return f.size }

// WriteAt writes synchronously through to the array, bypassing the cache.
// Files must be fully written before the first ReadTask (write-once).
func (f *File) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("safs: write [%d,%d) outside file %q of size %d", off, off+int64(len(p)), f.name, f.size)
	}
	return f.fs.array.WriteAt(p, f.base+off)
}

// ReadAt reads synchronously, bypassing the cache (setup paths and the
// SpMV engine's stripe sweeps; the vertex engine uses
// IOContext.ReadTask). When the file carries checksums every extent
// the read touches is verified before returning.
func (f *File) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("safs: read [%d,%d) outside file %q of size %d", off, off+int64(len(p)), f.name, f.size)
	}
	if err := f.fs.array.ReadAt(p, f.base+off); err != nil {
		return err
	}
	return f.VerifyRange(p, off)
}

// TaskFunc is a user task attached to an async read. It runs against the
// page cache via the View once all covered pages are resident. The View
// is valid only for the duration of the call.
type TaskFunc func(v *View, err error)

// pageHandle abstracts a cache frame or a private bypass buffer.
type pageHandle interface {
	Data() []byte
	OnReady(func(error))
	Complete(error)
	Unpin()
}

// bypassPage is a private, uncached frame used when a cache set is fully
// pinned.
type bypassPage struct {
	mu      sync.Mutex
	buf     []byte
	ready   bool
	err     error
	waiters []func(error)
}

func (b *bypassPage) Data() []byte { return b.buf }
func (b *bypassPage) Unpin()       {}
func (b *bypassPage) OnReady(fn func(error)) {
	b.mu.Lock()
	if b.ready {
		err := b.err
		b.mu.Unlock()
		fn(err)
		return
	}
	b.waiters = append(b.waiters, fn)
	b.mu.Unlock()
}
func (b *bypassPage) Complete(err error) {
	b.mu.Lock()
	b.ready = true
	b.err = err
	ws := b.waiters
	b.waiters = nil
	b.mu.Unlock()
	for _, fn := range ws {
		fn(err)
	}
}

// load is one page that needs device I/O.
type load struct {
	file   *File
	pageNo int64
	page   pageHandle
}

// completed is a finished request ready to run its task.
type completed struct {
	task TaskFunc
	view *View
	err  error
}

// IOStats counts the page traffic one IOContext generated. The global
// cache and array counters aggregate every context on the FS; these
// per-context counters are what let concurrent runs over one shared FS
// report accurate per-run hit rates and read volumes.
type IOStats struct {
	// PageHits counts pages served without a device load: already
	// resident, or attached to another caller's in-flight load.
	PageHits int64
	// PageLoads counts pages this context had to load itself (cache
	// misses it owned, plus bypass reads around a fully pinned set).
	PageLoads int64
	// BytesLoaded is PageLoads in bytes (pages are loaded whole).
	BytesLoaded int64
}

// IOContext is a per-worker I/O issue/completion context. It is not safe
// for concurrent use; each engine worker owns one (mirroring SAFS
// per-thread I/O instances).
type IOContext struct {
	fs *FS

	mu       sync.Mutex
	ready    []completed
	signal   chan struct{}
	staged   []load // loads awaiting Flush (MergeSAFS) or end of ReadTask
	inflight int64  // atomic: issued but not yet delivered to ready
	stats    IOStats

	// PendingTasks limits nothing by itself; the engine bounds issued
	// requests by its running-vertex cap.
}

// NewContext creates an I/O context on fs.
func (fs *FS) NewContext() *IOContext {
	return &IOContext{fs: fs, signal: make(chan struct{}, 1)}
}

// IOStats snapshots this context's page-traffic counters. Counters are
// written only by the owning goroutine during ReadTask; snapshot from
// another goroutine only after synchronizing with the owner.
func (ctx *IOContext) IOStats() IOStats { return ctx.stats }

// Pending returns the number of issued-but-unprocessed requests.
func (ctx *IOContext) Pending() int {
	ctx.mu.Lock()
	n := len(ctx.ready)
	ctx.mu.Unlock()
	return n + int(atomic.LoadInt64(&ctx.inflight))
}

func (ctx *IOContext) push(c completed) {
	ctx.mu.Lock()
	ctx.ready = append(ctx.ready, c)
	ctx.mu.Unlock()
	atomic.AddInt64(&ctx.inflight, -1)
	select {
	case ctx.signal <- struct{}{}:
	default:
	}
}

// ReadTask issues an asynchronous read of [off, off+length) of f and
// associates task with it. The task runs when the caller next calls Poll
// or WaitAny after all covered pages are resident.
//
// In MergeNone mode the page loads are dispatched immediately (grouped
// into contiguous runs within this request only). In MergeSAFS mode the
// loads are staged until Flush, allowing SAFS to merge across requests.
func (ctx *IOContext) ReadTask(f *File, off, length int64, task TaskFunc) {
	if length <= 0 {
		panic("safs: ReadTask with non-positive length")
	}
	if off < 0 || off+length > f.size {
		panic(fmt.Sprintf("safs: ReadTask [%d,%d) outside file %q of size %d", off, off+length, f.name, f.size))
	}
	atomic.AddInt64(&ctx.inflight, 1)
	ps := int64(ctx.fs.pageSize)
	p0 := off / ps
	p1 := (off + length - 1) / ps
	n := int(p1 - p0 + 1)

	view := &View{
		pageSize: ctx.fs.pageSize,
		head:     int(off - p0*ps),
		length:   length,
		frames:   make([]pageHandle, 0, n),
	}

	// pending counts page-ready events plus one sentinel so the task
	// cannot fire before all pages are examined.
	var pending int32 = 1
	var errMu sync.Mutex
	var firstErr error
	done := func(err error) {
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
		if atomic.AddInt32(&pending, -1) == 0 {
			errMu.Lock()
			e := firstErr
			errMu.Unlock()
			ctx.push(completed{task: task, view: view, err: e})
		}
	}

	for pn := p0; pn <= p1; pn++ {
		var h pageHandle
		pg, loader, ok := ctx.fs.cache.Acquire(pagecache.Key{FileID: f.id, PageNo: pn})
		if ok {
			h = pg
		} else {
			bp := &bypassPage{buf: make([]byte, ctx.fs.pageSize)}
			h = bp
			loader = true
		}
		if loader {
			ctx.stats.PageLoads++
			ctx.stats.BytesLoaded += int64(ctx.fs.pageSize)
		} else {
			ctx.stats.PageHits++
		}
		view.frames = append(view.frames, h)
		atomic.AddInt32(&pending, 1)
		h.OnReady(done)
		if loader {
			ctx.staged = append(ctx.staged, load{file: f, pageNo: pn, page: h})
		}
	}
	if ctx.fs.merge != MergeSAFS {
		ctx.flushStaged()
	}
	done(nil) // release sentinel
}

// Flush dispatches staged page loads. In MergeSAFS mode, staged loads
// from many requests are sorted by (file, page) and adjacent pages merge
// into single vectored device reads — SAFS-level merging (Figure 12).
func (ctx *IOContext) Flush() {
	if ctx.fs.merge == MergeSAFS {
		sort.Slice(ctx.staged, func(i, j int) bool {
			a, b := ctx.staged[i], ctx.staged[j]
			if a.file.id != b.file.id {
				return a.file.id < b.file.id
			}
			return a.pageNo < b.pageNo
		})
	}
	ctx.flushStaged()
}

// flushStaged groups consecutive staged loads (same file, adjacent
// pages) into vectored array reads and dispatches them. In MergeSAFS
// mode the whole flush goes down as ONE batch submission: the array
// routes every group's device extents together, and each device sorts
// and coalesces adjacent extents across groups before service — so
// runs that are contiguous on a device but split across files (or
// split by the staging order) still merge into single requests.
func (ctx *IOContext) flushStaged() {
	// Take ownership of the staged slice: completion closures below hold
	// sub-slices of it, so the context must not reuse the backing array.
	staged := ctx.staged
	ctx.staged = nil
	ps := int64(ctx.fs.pageSize)
	var batch []ssd.BatchRead
	batched := ctx.fs.merge == MergeSAFS
	perPage := ctx.fs.merge == MergePage
	for i := 0; i < len(staged); {
		j := i + 1
		for !perPage && j < len(staged) &&
			staged[j].file == staged[i].file &&
			staged[j].pageNo == staged[j-1].pageNo+1 {
			j++
		}
		group := staged[i:j]
		vec := make([][]byte, len(group))
		for k, ld := range group {
			vec[k] = ld.page.Data()
		}
		off := group[0].file.base + group[0].pageNo*ps
		done := func(err error) {
			// Verify each landed page before anyone can observe it:
			// Complete publishes the frame to every waiter, so a
			// corrupt page must carry its CorruptionError from the
			// start. Per-page verdicts — one flipped bit fails only
			// the page it hit, not the whole merged run.
			for _, ld := range group {
				e := err
				if e == nil {
					e = ld.file.verifyPage(ld.pageNo, ld.page.Data())
				}
				ld.page.Complete(e)
			}
		}
		if batched {
			batch = append(batch, ssd.BatchRead{Off: off, Vec: vec, Done: done})
		} else {
			ctx.fs.array.SubmitReadVec(off, vec, done)
		}
		i = j
	}
	if len(batch) > 0 {
		ctx.fs.array.SubmitReadBatch(batch)
	}
}

// Poll runs all currently-completed tasks on the calling goroutine and
// returns how many ran. It never blocks. Views are released (pins
// returned to the shared cache) even when a task panics: the panic
// propagates, but it must not leak pinned frames into a cache other
// I/O contexts share.
func (ctx *IOContext) Poll() int {
	ctx.mu.Lock()
	batch := ctx.ready
	ctx.ready = nil
	ctx.mu.Unlock()
	next := 0
	defer func() {
		// Only non-empty when a task panicked mid-batch.
		for _, c := range batch[next:] {
			c.view.release()
		}
	}()
	for _, c := range batch {
		next++
		func() {
			defer c.view.release()
			c.task(c.view, c.err)
		}()
	}
	return len(batch)
}

// WaitAny blocks until at least one task has run (or nothing is in
// flight), then returns the number of tasks run.
func (ctx *IOContext) WaitAny() int {
	for {
		if n := ctx.Poll(); n > 0 {
			return n
		}
		if atomic.LoadInt64(&ctx.inflight) == 0 {
			return 0
		}
		<-ctx.signal
	}
}

// WaitSignal blocks until a completion is delivered (or returns
// immediately when nothing is in flight) WITHOUT running tasks. Callers
// that need to attribute time to I/O wait versus computation use
// Poll + WaitSignal instead of WaitAny.
func (ctx *IOContext) WaitSignal() {
	if atomic.LoadInt64(&ctx.inflight) == 0 {
		return
	}
	<-ctx.signal
}

// DiscardPending flushes staged loads, waits for every in-flight
// request to land, and releases their views WITHOUT running the
// attached tasks. It is the abort path: a run that died mid-flight must
// still return its pinned frames to the shared cache.
func (ctx *IOContext) DiscardPending() {
	ctx.Flush() // staged loads would otherwise never complete
	for {
		ctx.mu.Lock()
		batch := ctx.ready
		ctx.ready = nil
		ctx.mu.Unlock()
		for _, c := range batch {
			c.view.release()
		}
		if atomic.LoadInt64(&ctx.inflight) == 0 {
			return
		}
		<-ctx.signal
	}
}

// Drain runs tasks until no requests remain in flight.
func (ctx *IOContext) Drain() {
	ctx.Flush()
	for {
		ctx.Poll()
		if atomic.LoadInt64(&ctx.inflight) == 0 && ctx.Pending() == 0 {
			return
		}
		<-ctx.signal
	}
}
