// Package graphchi is the repository's stand-in for GraphChi (Kyrola et
// al., OSDI'12), the magnetic-disk external-memory engine the paper
// compares against in §5.3. Its defining property — and the reason
// FlashGraph beats it by 1–2 orders of magnitude on SSDs — is that it
// eliminates random I/O by sequentially scanning the ENTIRE graph every
// iteration (parallel sliding windows), even when the algorithm only
// touches a few vertices.
//
// This implementation preserves that I/O behaviour faithfully: every
// iteration streams the full edge-list file(s) from the same simulated
// SSD array in large sequential chunks; computation happens per vertex
// record as the scan passes it. GraphChi provides no BFS (the paper
// notes this; Figure 11 has no GraphChi BFS bar), so neither do we.
package graphchi

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"flashgraph/internal/graph"
	"flashgraph/internal/safs"
)

// Engine streams a graph image from SAFS, whole-graph per iteration.
type Engine struct {
	img     *graph.Image
	files   *graph.FSFiles
	fs      *safs.FS
	threads int
	// ChunkBytes is the sequential read unit (default 2MiB — GraphChi
	// uses large blocks; §3's design discussion).
	ChunkBytes int
	// MemBudget bounds in-memory interval state for multi-pass
	// algorithms like TC (default 64MiB).
	MemBudget int64

	// Iterations performed by the last algorithm run.
	Iterations int
	// FullScans counts whole-file scans performed (the cost driver).
	FullScans int
}

// New loads img into fs under the given name and returns an engine.
func New(img *graph.Image, fs *safs.FS, name string, threads int) (*Engine, error) {
	if img.Encoding != graph.EncodingRaw {
		// The baseline's shard scanner parses fixed-size raw records
		// directly; it is a comparison harness, not a serving path, so
		// it has no delta decoder.
		return nil, fmt.Errorf("graphchi: baseline requires a raw-encoded image (got %s)", img.Encoding)
	}
	files, err := img.LoadToFS(fs, name)
	if err != nil {
		return nil, fmt.Errorf("graphchi: %w", err)
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		img:        img,
		files:      files,
		fs:         fs,
		threads:    threads,
		ChunkBytes: 2 << 20,
		MemBudget:  64 << 20,
	}, nil
}

// vertexSpan is one decoded record delivered by a scan.
type vertexSpan struct {
	v    graph.VertexID
	nbrs []graph.VertexID
}

// scan streams one edge-list file start to finish, delivering every
// vertex's neighbor list in ID order. fn calls are parallelized across
// a batch but the file is read strictly sequentially.
func (e *Engine) scan(dir graph.EdgeDir, fn func(v graph.VertexID, nbrs []graph.VertexID)) error {
	e.FullScans++
	f := e.files.Out
	ix := e.img.OutIndex
	if dir == graph.InEdges && e.files.In != nil {
		f = e.files.In
		ix = e.img.InIndex
	}
	size := ix.FileSize()
	buf := make([]byte, e.ChunkBytes)
	var carry []byte
	var v graph.VertexID
	var batch []vertexSpan
	flush := func() {
		if len(batch) == 0 {
			return
		}
		var wg sync.WaitGroup
		chunk := (len(batch) + e.threads - 1) / e.threads
		for w := 0; w < e.threads; w++ {
			lo := w * chunk
			if lo >= len(batch) {
				break
			}
			hi := lo + chunk
			if hi > len(batch) {
				hi = len(batch)
			}
			wg.Add(1)
			go func(part []vertexSpan) {
				defer wg.Done()
				for _, s := range part {
					fn(s.v, s.nbrs)
				}
			}(batch[lo:hi])
		}
		wg.Wait()
		batch = batch[:0]
	}
	attr := int64(e.img.AttrSize)
	for off := int64(0); off < size; {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if err := f.ReadAt(buf[:n], off); err != nil {
			return err
		}
		off += n
		data := buf[:n]
		if len(carry) > 0 {
			data = append(carry, data...)
		}
		pos := int64(0)
		for {
			if pos+4 > int64(len(data)) {
				break
			}
			deg := binary.LittleEndian.Uint32(data[pos:])
			recEnd := pos + graph.RecordSize(deg, int(attr))
			if recEnd > int64(len(data)) {
				break
			}
			nbrs := make([]graph.VertexID, deg)
			for i := uint32(0); i < deg; i++ {
				nbrs[i] = binary.LittleEndian.Uint32(data[pos+4+int64(i)*4:])
			}
			batch = append(batch, vertexSpan{v: v, nbrs: nbrs})
			v++
			pos = recEnd
		}
		carry = append(carry[:0], data[pos:]...)
		flush()
	}
	if len(carry) > 0 {
		return fmt.Errorf("graphchi: %d trailing bytes after scan", len(carry))
	}
	return nil
}

// PageRank runs pull-style PageRank: each iteration scans the in-edge
// file (out file for undirected graphs) once; converges on max delta or
// the iteration cap.
func (e *Engine) PageRank(maxIters int, damping, tol float64) ([]float64, error) {
	n := e.img.NumV
	pr := make([]float64, n)
	next := make([]float64, n)
	for v := range pr {
		pr[v] = 1.0
	}
	dir := graph.InEdges
	if !e.img.Directed {
		dir = graph.OutEdges
	}
	outDeg := e.img.OutIndex
	e.Iterations = 0
	for iter := 0; iter < maxIters; iter++ {
		e.Iterations++
		var maxDelta float64
		var mu sync.Mutex
		err := e.scan(dir, func(v graph.VertexID, nbrs []graph.VertexID) {
			sum := 0.0
			for _, u := range nbrs {
				if d := outDeg.Degree(u); d > 0 {
					sum += pr[u] / float64(d)
				}
			}
			nv := (1 - damping) + damping*sum
			next[v] = nv
			d := nv - pr[v]
			if d < 0 {
				d = -d
			}
			mu.Lock()
			if d > maxDelta {
				maxDelta = d
			}
			mu.Unlock()
		})
		if err != nil {
			return nil, err
		}
		pr, next = next, pr
		if maxDelta < tol {
			break
		}
	}
	return pr, nil
}

// WCC runs min-label propagation, scanning both files per iteration
// until no label changes.
func (e *Engine) WCC() ([]graph.VertexID, error) {
	n := e.img.NumV
	labels := make([]int64, n)
	for v := range labels {
		labels[v] = int64(v)
	}
	e.Iterations = 0
	for {
		e.Iterations++
		changed := false
		var mu sync.Mutex
		relax := func(v graph.VertexID, nbrs []graph.VertexID) {
			mu.Lock()
			l := labels[v]
			for _, u := range nbrs {
				if labels[u] < l {
					l = labels[u]
				}
			}
			if l < labels[v] {
				labels[v] = l
				changed = true
			}
			// Push as well (symmetric relaxation converges faster and
			// matches weak connectivity over directed edges).
			for _, u := range nbrs {
				if labels[u] > l {
					labels[u] = l
					changed = true
				}
			}
			mu.Unlock()
		}
		if err := e.scan(graph.OutEdges, relax); err != nil {
			return nil, err
		}
		if !changed {
			break
		}
	}
	out := make([]graph.VertexID, n)
	for v, l := range labels {
		out[v] = graph.VertexID(l)
	}
	return out, nil
}

// TriangleCount counts undirected triangles with interval multi-pass
// scans: vertices are split into intervals sized by MemBudget; for each
// interval the whole graph is scanned twice (once to materialize the
// interval's neighbor sets, once to intersect every vertex's list
// against them). This mirrors GraphChi's "read the entire graph dataset
// multiple times" cost profile for TC.
func (e *Engine) TriangleCount() (int64, error) {
	n := e.img.NumV
	// Undirected neighbor sets require both directions for directed
	// graphs; mergeNbrs handles dedup.
	bytesPerVertex := int64(16)
	var adjBytes int64 = e.img.OutIndex.NumEdges() * 8
	intervals := int((adjBytes+bytesPerVertex*int64(n))/e.MemBudget) + 1
	intervalSize := (n + intervals - 1) / intervals

	var total int64
	e.Iterations = 0
	for lo := 0; lo < n; lo += intervalSize {
		hi := lo + intervalSize
		if hi > n {
			hi = n
		}
		e.Iterations++
		// Pass 1: materialize interval vertices' undirected neighbor
		// sets (> v only: triangles count at their min corner).
		intNbrs := make([][]graph.VertexID, hi-lo)
		collect := func(v graph.VertexID, nbrs []graph.VertexID) {
			if int(v) < lo || int(v) >= hi {
				return
			}
			intNbrs[int(v)-lo] = append(intNbrs[int(v)-lo], nbrs...)
		}
		if err := e.scan(graph.OutEdges, collect); err != nil {
			return 0, err
		}
		if e.img.Directed {
			if err := e.scan(graph.InEdges, collect); err != nil {
				return 0, err
			}
		}
		var mu sync.Mutex
		for i := range intNbrs {
			intNbrs[i] = dedupGT(intNbrs[i], graph.VertexID(lo+i))
		}

		// Pass 2: stream every vertex u's merged list and intersect with
		// interval vertices v < u that are adjacent to u.
		uNbrs := make([][]graph.VertexID, n) // staging for directed merge
		count := func(u graph.VertexID, merged []graph.VertexID) {
			for _, v := range merged {
				if int(v) < lo || int(v) >= hi || v >= u {
					continue
				}
				nv := intNbrs[int(v)-lo]
				// v < u: w must satisfy w > u, w in N(v) and N(u).
				c := intersectGT(nv, merged, u)
				mu.Lock()
				total += c
				mu.Unlock()
			}
		}
		if !e.img.Directed {
			err := e.scan(graph.OutEdges, func(u graph.VertexID, nbrs []graph.VertexID) {
				count(u, dedupGT(nbrs, graph.InvalidVertex))
			})
			if err != nil {
				return 0, err
			}
			continue
		}
		// Directed: merge out then in lists per vertex across two scans.
		err := e.scan(graph.OutEdges, func(u graph.VertexID, nbrs []graph.VertexID) {
			uNbrs[u] = append([]graph.VertexID(nil), nbrs...)
		})
		if err != nil {
			return 0, err
		}
		err = e.scan(graph.InEdges, func(u graph.VertexID, nbrs []graph.VertexID) {
			merged := dedupGT(append(uNbrs[u], nbrs...), graph.InvalidVertex)
			uNbrs[u] = nil
			count(u, merged)
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// dedupGT sorts, dedups and (when v != InvalidVertex) keeps IDs > v;
// self references are dropped either way.
func dedupGT(raw []graph.VertexID, v graph.VertexID) []graph.VertexID {
	if len(raw) == 0 {
		return raw
	}
	sortIDs(raw)
	out := raw[:0]
	var prev = graph.InvalidVertex
	for _, u := range raw {
		if u == prev || (v != graph.InvalidVertex && u <= v) {
			continue
		}
		out = append(out, u)
		prev = u
	}
	return out
}

// intersectGT counts members of sorted a ∩ b strictly greater than x.
func intersectGT(a, b []graph.VertexID, x graph.VertexID) int64 {
	i := lowerGT(a, x)
	j := lowerGT(b, x)
	var n int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func lowerGT(s []graph.VertexID, x graph.VertexID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sortIDs is an insertion/quick hybrid for VertexID slices (avoids the
// sort.Slice closure cost in the hot path).
func sortIDs(s []graph.VertexID) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			x := s[i]
			j := i - 1
			for j >= 0 && s[j] > x {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = x
		}
		return
	}
	pivot := s[len(s)/2]
	left, right := 0, len(s)-1
	for left <= right {
		for s[left] < pivot {
			left++
		}
		for s[right] > pivot {
			right--
		}
		if left <= right {
			s[left], s[right] = s[right], s[left]
			left++
			right--
		}
	}
	sortIDs(s[:right+1])
	sortIDs(s[left:])
}
