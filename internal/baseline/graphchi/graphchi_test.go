package graphchi

import (
	"math"
	"sync/atomic"
	"testing"

	"flashgraph/internal/baseline/galois"
	"flashgraph/internal/csr"
	"flashgraph/internal/gen"
	"flashgraph/internal/graph"
	"flashgraph/internal/safs"
	"flashgraph/internal/ssd"
)

func setup(t *testing.T, scale, epv int, seed uint64) (*Engine, *csr.Graph, *safs.FS) {
	t.Helper()
	a := graph.FromEdges(1<<scale, gen.RMAT(scale, epv, seed), true)
	a.Dedup()
	img := graph.BuildImage(a, 0, nil)
	arr := ssd.NewArray(ssd.ArrayParams{Devices: 4, StripeSize: 64 * 4096})
	t.Cleanup(arr.Close)
	fs := safs.New(arr, safs.Config{CacheBytes: 1 << 20})
	e, err := New(img, fs, "gc", 4)
	if err != nil {
		t.Fatal(err)
	}
	return e, csr.FromAdjacency(a), fs
}

func TestScanDeliversEveryVertexInOrder(t *testing.T) {
	e, ref, _ := setup(t, 9, 6, 1)
	var seen int64 // fn batches run on parallel goroutines
	err := e.scan(graph.OutEdges, func(v graph.VertexID, nbrs []graph.VertexID) {
		// Batch construction is ordered; verify content per vertex
		// rather than global callback order.
		if len(nbrs) != ref.OutDegree(v) {
			t.Errorf("vertex %d: %d nbrs, want %d", v, len(nbrs), ref.OutDegree(v))
		}
		atomic.AddInt64(&seen, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != int64(ref.N) {
		t.Fatalf("scan delivered %d vertices, want %d", seen, ref.N)
	}
}

func TestScanIsSequentialIO(t *testing.T) {
	e, _, fs := setup(t, 12, 8, 2)
	fs.Array().ResetStats()
	if err := e.scan(graph.OutEdges, func(graph.VertexID, []graph.VertexID) {}); err != nil {
		t.Fatal(err)
	}
	st := fs.Array().Stats()
	if st.Reads == 0 {
		t.Fatal("no device reads")
	}
	// Streaming requests split only at stripe boundaries: mean request
	// size must dwarf a 4KB random read.
	if mean := st.BytesRead / st.Reads; mean < 16<<10 {
		t.Fatalf("mean request size %d suggests non-sequential I/O", mean)
	}
}

func TestPageRankMatchesPullReference(t *testing.T) {
	e, ref, _ := setup(t, 9, 8, 3)
	got, err := e.PageRank(50, 0.85, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	// Pull-style reference on CSR.
	n := ref.N
	want := make([]float64, n)
	next := make([]float64, n)
	for v := range want {
		want[v] = 1.0
	}
	for iter := 0; iter < 50; iter++ {
		var maxDelta float64
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range ref.In(graph.VertexID(v)) {
				if d := ref.OutDegree(u); d > 0 {
					sum += want[u] / float64(d)
				}
			}
			next[v] = 0.15 + 0.85*sum
			if d := math.Abs(next[v] - want[v]); d > maxDelta {
				maxDelta = d
			}
		}
		want, next = next, want
		if maxDelta < 1e-10 {
			break
		}
	}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-8*(1+want[v]) {
			t.Fatalf("pr[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestWCCMatchesGalois(t *testing.T) {
	e, ref, _ := setup(t, 9, 4, 4)
	got, err := e.WCC()
	if err != nil {
		t.Fatal(err)
	}
	want := galois.WCC(ref)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestTriangleCountMatchesGalois(t *testing.T) {
	e, ref, _ := setup(t, 8, 6, 5)
	got, err := e.TriangleCount()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := galois.TriangleCount(ref)
	if got != want {
		t.Fatalf("tc = %d, want %d", got, want)
	}
}

func TestTriangleCountMultiInterval(t *testing.T) {
	e, ref, _ := setup(t, 9, 6, 6)
	e.MemBudget = 8 << 10 // force several intervals
	got, err := e.TriangleCount()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := galois.TriangleCount(ref)
	if got != want {
		t.Fatalf("tc = %d, want %d (intervals = %d)", got, want, e.Iterations)
	}
	if e.Iterations < 2 {
		t.Fatalf("expected multiple intervals, got %d", e.Iterations)
	}
}

func TestFullScanAccounting(t *testing.T) {
	e, _, _ := setup(t, 8, 4, 7)
	before := e.FullScans
	if _, err := e.WCC(); err != nil {
		t.Fatal(err)
	}
	if e.FullScans <= before {
		t.Fatal("WCC must perform full scans")
	}
	if e.Iterations == 0 {
		t.Fatal("iterations not recorded")
	}
}
