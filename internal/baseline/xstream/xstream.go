// Package xstream is the repository's stand-in for X-Stream (Roy et
// al., SOSP'13), the edge-centric external-memory engine the paper
// compares against in §5.3. X-Stream's model: every iteration streams
// the ENTIRE unsorted edge list sequentially (scatter phase emits
// updates along edges whose source is active; gather applies them),
// trading random access for full scans — the strategy FlashGraph's
// selective access beats by 1–2 orders of magnitude on SSDs.
//
// Substitutions (documented in DESIGN.md): update streams are buffered
// in memory rather than spilled to disk (this only makes X-Stream
// faster, so the comparison stays conservative), and triangle counting
// is an exact interval multi-pass variant rather than the approximate
// semi-streaming algorithm [4] (same full-scan cost profile).
package xstream

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"flashgraph/internal/graph"
	"flashgraph/internal/safs"
)

// edgeBytes is the on-SSD size of one directed edge (src, dst).
const edgeBytes = 8

// Engine streams a flat edge file from SAFS.
type Engine struct {
	fs       *safs.FS
	file     *safs.File
	numV     int
	numEdges int64
	threads  int
	// ChunkBytes is the sequential streaming unit (default 2MiB).
	ChunkBytes int
	// MemBudget bounds interval state for TC (default 64MiB).
	MemBudget int64
	// FullScans counts whole-edge-file scans (the cost driver).
	FullScans int
	// Iterations performed by the last run.
	Iterations int

	outDeg     []uint32
	canon      *safs.File // canonical undirected edge file (TC)
	canonEdges int64
}

// New serializes the image's directed edges into a flat edge file on fs
// (X-Stream's native format) and returns an engine.
func New(img *graph.Image, fs *safs.FS, name string, threads int) (*Engine, error) {
	if img.Encoding != graph.EncodingRaw {
		// The flattener below parses fixed-size raw records out of
		// OutData directly; the baseline harness has no delta decoder.
		return nil, fmt.Errorf("xstream: baseline requires a raw-encoded image (got %s)", img.Encoding)
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	// Decode the out-edge lists into a flat (src, dst) stream.
	outDeg := make([]uint32, img.NumV)
	var m int64
	for v := 0; v < img.NumV; v++ {
		outDeg[v] = img.OutIndex.Degree(graph.VertexID(v))
		m += int64(outDeg[v])
	}
	f, err := fs.Create(name+".edges", m*edgeBytes)
	if err != nil {
		return nil, fmt.Errorf("xstream: %w", err)
	}
	buf := make([]byte, 1<<20)
	pos := 0
	off := int64(0)
	flushBuf := func() error {
		if pos == 0 {
			return nil
		}
		if err := f.WriteAt(buf[:pos], off); err != nil {
			return err
		}
		off += int64(pos)
		pos = 0
		return nil
	}
	for v := 0; v < img.NumV; v++ {
		recOff, _ := img.OutIndex.Locate(graph.VertexID(v))
		deg := int(outDeg[v])
		for i := 0; i < deg; i++ {
			if pos+edgeBytes > len(buf) {
				if err := flushBuf(); err != nil {
					return nil, err
				}
			}
			dst := binary.LittleEndian.Uint32(img.OutData[recOff+4+int64(i)*4:])
			binary.LittleEndian.PutUint32(buf[pos:], uint32(v))
			binary.LittleEndian.PutUint32(buf[pos+4:], dst)
			pos += edgeBytes
		}
	}
	if err := flushBuf(); err != nil {
		return nil, err
	}
	return &Engine{
		fs:         fs,
		file:       f,
		numV:       img.NumV,
		numEdges:   m,
		threads:    threads,
		ChunkBytes: 2 << 20,
		MemBudget:  64 << 20,
		outDeg:     outDeg,
	}, nil
}

// scanEdges streams the whole edge file once, invoking fn for batches
// of edges. The file read is strictly sequential; fn batches run in
// parallel.
func (e *Engine) scanEdges(fn func(edges []graph.Edge)) error {
	e.FullScans++
	size := e.numEdges * edgeBytes
	buf := make([]byte, e.ChunkBytes)
	for off := int64(0); off < size; {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		n -= n % edgeBytes
		if err := e.file.ReadAt(buf[:n], off); err != nil {
			return err
		}
		off += n
		count := int(n / edgeBytes)
		edges := make([]graph.Edge, count)
		for i := 0; i < count; i++ {
			edges[i] = graph.Edge{
				Src: binary.LittleEndian.Uint32(buf[i*edgeBytes:]),
				Dst: binary.LittleEndian.Uint32(buf[i*edgeBytes+4:]),
			}
		}
		var wg sync.WaitGroup
		chunk := (count + e.threads - 1) / e.threads
		for w := 0; w < e.threads; w++ {
			lo := w * chunk
			if lo >= count {
				break
			}
			hi := lo + chunk
			if hi > count {
				hi = count
			}
			wg.Add(1)
			go func(part []graph.Edge) {
				defer wg.Done()
				fn(part)
			}(edges[lo:hi])
		}
		wg.Wait()
	}
	return nil
}

// BFS runs edge-centric BFS: each iteration scans all edges and settles
// frontier neighbors.
func (e *Engine) BFS(src graph.VertexID) ([]int32, error) {
	level := make([]int32, e.numV)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	e.Iterations = 0
	for depth := int32(0); ; depth++ {
		e.Iterations++
		var mu sync.Mutex
		err := e.scanEdges(func(edges []graph.Edge) {
			mu.Lock()
			for _, ed := range edges {
				if level[ed.Src] == depth && level[ed.Dst] == -1 {
					level[ed.Dst] = depth + 1
				}
			}
			mu.Unlock()
		})
		if err != nil {
			return nil, err
		}
		// Count newly settled vertices for termination.
		settled := 0
		for _, l := range level {
			if l == depth+1 {
				settled++
			}
		}
		if settled == 0 {
			break
		}
	}
	return level, nil
}

// WCC runs edge-centric min-label propagation to convergence.
func (e *Engine) WCC() ([]graph.VertexID, error) {
	labels := make([]int64, e.numV)
	for v := range labels {
		labels[v] = int64(v)
	}
	e.Iterations = 0
	for {
		e.Iterations++
		changed := false
		var mu sync.Mutex
		err := e.scanEdges(func(edges []graph.Edge) {
			mu.Lock()
			for _, ed := range edges {
				ls, ld := labels[ed.Src], labels[ed.Dst]
				switch {
				case ls < ld:
					labels[ed.Dst] = ls
					changed = true
				case ld < ls:
					labels[ed.Src] = ld
					changed = true
				}
			}
			mu.Unlock()
		})
		if err != nil {
			return nil, err
		}
		if !changed {
			break
		}
	}
	out := make([]graph.VertexID, e.numV)
	for v, l := range labels {
		out[v] = graph.VertexID(l)
	}
	return out, nil
}

// PageRank runs delta PageRank edge-centrically: the scatter phase
// streams all edges, pushing shares of active sources; gather absorbs.
func (e *Engine) PageRank(maxIters int, damping, threshold float64) ([]float64, error) {
	n := e.numV
	pr := make([]float64, n)
	accum := make([]float64, n)
	delta := make([]float64, n)
	active := make([]bool, n)
	for v := range accum {
		accum[v] = 1 - damping
		active[v] = true
	}
	e.Iterations = 0
	for iter := 0; iter < maxIters; iter++ {
		e.Iterations++
		// Absorb.
		anyActive := false
		for v := 0; v < n; v++ {
			delta[v] = 0
			if !active[v] {
				continue
			}
			d := accum[v]
			accum[v] = 0
			pr[v] += d
			if e.outDeg[v] > 0 {
				delta[v] = damping * d / float64(e.outDeg[v])
				anyActive = true
			}
			active[v] = false
		}
		if !anyActive {
			break
		}
		// Scatter: full edge scan.
		var mu sync.Mutex
		err := e.scanEdges(func(edges []graph.Edge) {
			mu.Lock()
			for _, ed := range edges {
				if d := delta[ed.Src]; d != 0 {
					accum[ed.Dst] += d
				}
			}
			mu.Unlock()
		})
		if err != nil {
			return nil, err
		}
		// Gather: activate receivers above threshold.
		any := false
		for v := 0; v < n; v++ {
			if accum[v] > threshold || accum[v] < -threshold {
				active[v] = true
				any = true
			}
		}
		if !any {
			break
		}
	}
	return pr, nil
}

// TriangleCount counts undirected triangles with interval multi-pass
// scans of the canonical undirected edge file (each undirected pair
// once, smaller endpoint first — built lazily on first use). Per
// interval: pass 1 streams all edges collecting, for each edge endpoint
// x, the interval vertices v < x adjacent to x (a reverse index);
// pass 2 streams all edges again and counts rev(u) ∩ rev(w) per edge
// (u, w) — every common interval neighbor below both endpoints closes a
// triangle at its minimum corner.
func (e *Engine) TriangleCount() (int64, error) {
	if err := e.buildCanonical(); err != nil {
		return 0, err
	}
	n := e.numV
	bytesPer := int64(24)
	intervals := int((e.canonEdges*16+bytesPer*int64(n))/e.MemBudget) + 1
	intervalSize := (n + intervals - 1) / intervals

	var total int64
	e.Iterations = 0
	for lo := 0; lo < n; lo += intervalSize {
		hi := lo + intervalSize
		if hi > n {
			hi = n
		}
		e.Iterations++
		// Pass 1: reverse index — rev[x] lists interval vertices v < x
		// with {v, x} an edge (canonical file: src < dst always).
		rev := make([][]graph.VertexID, n)
		var mu sync.Mutex
		err := e.scanCanonical(func(edges []graph.Edge) {
			mu.Lock()
			for _, ed := range edges {
				v, x := ed.Src, ed.Dst // v < x by construction
				if int(v) >= lo && int(v) < hi {
					rev[x] = append(rev[x], v)
				}
			}
			mu.Unlock()
		})
		if err != nil {
			return 0, err
		}
		for x := range rev {
			rev[x] = dedupSorted(rev[x])
		}
		// Pass 2: per edge (u, w), common interval vertices below both
		// endpoints close triangles.
		err = e.scanCanonical(func(edges []graph.Edge) {
			var local int64
			for _, ed := range edges {
				local += intersectCount(rev[ed.Src], rev[ed.Dst])
			}
			mu.Lock()
			total += local
			mu.Unlock()
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// buildCanonical writes the deduplicated undirected edge file (pairs
// normalized to src < dst) used by TriangleCount. The canonicalization
// plays the role of the preprocessing X-Stream's semi-streaming TC [4]
// performs.
func (e *Engine) buildCanonical() error {
	if e.canon != nil {
		return nil
	}
	// Stream the directed file once, keeping normalized pairs; a pair
	// that exists in both directions is kept only for its (src < dst)
	// occurrence unless only the reversed direction exists. Detect with
	// a bitmap of "seen normalized" hashes per source — exactness
	// matters, so collect per-source neighbor sets in bounded slabs.
	type pair = graph.Edge
	var pairs []pair
	var mu sync.Mutex
	err := e.scanEdges(func(edges []graph.Edge) {
		local := make([]pair, 0, len(edges))
		for _, ed := range edges {
			if ed.Src == ed.Dst {
				continue
			}
			p := ed
			if p.Src > p.Dst {
				p.Src, p.Dst = p.Dst, p.Src
			}
			local = append(local, p)
		}
		mu.Lock()
		pairs = append(pairs, local...)
		mu.Unlock()
	})
	if err != nil {
		return err
	}
	sortPairs(pairs)
	uniq := pairs[:0]
	for i, p := range pairs {
		if i > 0 && p == pairs[i-1] {
			continue
		}
		uniq = append(uniq, p)
	}
	f, err := e.fs.Create(e.file.Name()+".canon", int64(len(uniq))*edgeBytes)
	if err != nil {
		return err
	}
	buf := make([]byte, 1<<20)
	pos, off := 0, int64(0)
	for _, p := range uniq {
		if pos+edgeBytes > len(buf) {
			if err := f.WriteAt(buf[:pos], off); err != nil {
				return err
			}
			off += int64(pos)
			pos = 0
		}
		binary.LittleEndian.PutUint32(buf[pos:], p.Src)
		binary.LittleEndian.PutUint32(buf[pos+4:], p.Dst)
		pos += edgeBytes
	}
	if pos > 0 {
		if err := f.WriteAt(buf[:pos], off); err != nil {
			return err
		}
	}
	e.canon = f
	e.canonEdges = int64(len(uniq))
	return nil
}

// scanCanonical streams the canonical undirected edge file.
func (e *Engine) scanCanonical(fn func(edges []graph.Edge)) error {
	e.FullScans++
	size := e.canonEdges * edgeBytes
	buf := make([]byte, e.ChunkBytes)
	for off := int64(0); off < size; {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		n -= n % edgeBytes
		if err := e.canon.ReadAt(buf[:n], off); err != nil {
			return err
		}
		off += n
		count := int(n / edgeBytes)
		edges := make([]graph.Edge, count)
		for i := 0; i < count; i++ {
			edges[i] = graph.Edge{
				Src: binary.LittleEndian.Uint32(buf[i*edgeBytes:]),
				Dst: binary.LittleEndian.Uint32(buf[i*edgeBytes+4:]),
			}
		}
		fn(edges)
	}
	return nil
}

// intersectCount returns |a ∩ b| for sorted slices.
func intersectCount(a, b []graph.VertexID) int64 {
	i, j := 0, 0
	var n int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// sortPairs sorts edges by (Src, Dst).
func sortPairs(s []graph.Edge) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			x := s[i]
			j := i - 1
			for j >= 0 && pairLess(x, s[j]) {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = x
		}
		return
	}
	pivot := s[len(s)/2]
	left, right := 0, len(s)-1
	for left <= right {
		for pairLess(s[left], pivot) {
			left++
		}
		for pairLess(pivot, s[right]) {
			right--
		}
		if left <= right {
			s[left], s[right] = s[right], s[left]
			left++
			right--
		}
	}
	sortPairs(s[:right+1])
	sortPairs(s[left:])
}

func pairLess(a, b graph.Edge) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}

// dedupSorted sorts and dedups in place.
func dedupSorted(s []graph.VertexID) []graph.VertexID {
	if len(s) == 0 {
		return s
	}
	sortIDs(s)
	out := s[:1]
	for _, u := range s[1:] {
		if u != out[len(out)-1] {
			out = append(out, u)
		}
	}
	return out
}

func containsSorted(s []graph.VertexID, x graph.VertexID) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

func sortIDs(s []graph.VertexID) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			x := s[i]
			j := i - 1
			for j >= 0 && s[j] > x {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = x
		}
		return
	}
	pivot := s[len(s)/2]
	left, right := 0, len(s)-1
	for left <= right {
		for s[left] < pivot {
			left++
		}
		for s[right] > pivot {
			right--
		}
		if left <= right {
			s[left], s[right] = s[right], s[left]
			left++
			right--
		}
	}
	sortIDs(s[:right+1])
	sortIDs(s[left:])
}
