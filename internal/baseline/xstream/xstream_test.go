package xstream

import (
	"math"
	"sync/atomic"
	"testing"

	"flashgraph/internal/baseline/galois"
	"flashgraph/internal/csr"
	"flashgraph/internal/gen"
	"flashgraph/internal/graph"
	"flashgraph/internal/safs"
	"flashgraph/internal/ssd"
)

func setup(t *testing.T, scale, epv int, seed uint64) (*Engine, *csr.Graph, *safs.FS) {
	t.Helper()
	a := graph.FromEdges(1<<scale, gen.RMAT(scale, epv, seed), true)
	a.Dedup()
	img := graph.BuildImage(a, 0, nil)
	arr := ssd.NewArray(ssd.ArrayParams{Devices: 4, StripeSize: 64 * 4096})
	t.Cleanup(arr.Close)
	fs := safs.New(arr, safs.Config{CacheBytes: 1 << 20})
	e, err := New(img, fs, "xs", 4)
	if err != nil {
		t.Fatal(err)
	}
	return e, csr.FromAdjacency(a), fs
}

func TestEdgeFileComplete(t *testing.T) {
	e, ref, _ := setup(t, 9, 6, 1)
	if e.numEdges != ref.NumEdges() {
		t.Fatalf("edge file has %d edges, want %d", e.numEdges, ref.NumEdges())
	}
	var streamed int64 // callback batches run on parallel goroutines
	err := e.scanEdges(func(edges []graph.Edge) {
		for _, ed := range edges {
			if int(ed.Src) >= ref.N || int(ed.Dst) >= ref.N {
				t.Errorf("bad edge %v", ed)
			}
		}
		atomic.AddInt64(&streamed, int64(len(edges)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != e.numEdges {
		t.Fatalf("streamed %d, want %d", streamed, e.numEdges)
	}
}

func TestBFSMatchesGalois(t *testing.T) {
	e, ref, _ := setup(t, 9, 6, 2)
	got, err := e.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	want := galois.BFS(ref, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSScansWholeGraphPerLevel(t *testing.T) {
	e, ref, _ := setup(t, 9, 6, 3)
	e.FullScans = 0
	if _, err := e.BFS(0); err != nil {
		t.Fatal(err)
	}
	// X-Stream's cost: about one full scan per BFS level.
	levels := 0
	for _, l := range galois.BFS(ref, 0) {
		if int(l) > levels {
			levels = int(l)
		}
	}
	if e.FullScans < levels {
		t.Fatalf("full scans = %d, want >= depth %d", e.FullScans, levels)
	}
}

func TestWCCMatchesGalois(t *testing.T) {
	e, ref, _ := setup(t, 9, 4, 4)
	got, err := e.WCC()
	if err != nil {
		t.Fatal(err)
	}
	want := galois.WCC(ref)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestPageRankMatchesGalois(t *testing.T) {
	e, ref, _ := setup(t, 9, 8, 5)
	got, err := e.PageRank(30, 0.85, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	want := galois.PageRankDelta(ref, 30, 0.85, 1e-7)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-5*(1+want[v]) {
			t.Fatalf("pr[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestTriangleCountMatchesGalois(t *testing.T) {
	e, ref, _ := setup(t, 8, 6, 6)
	got, err := e.TriangleCount()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := galois.TriangleCount(ref)
	if got != want {
		t.Fatalf("tc = %d, want %d", got, want)
	}
}

func TestTriangleCountMultiInterval(t *testing.T) {
	e, ref, _ := setup(t, 9, 6, 7)
	e.MemBudget = 8 << 10
	got, err := e.TriangleCount()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := galois.TriangleCount(ref)
	if got != want {
		t.Fatalf("tc = %d, want %d (intervals = %d)", got, want, e.Iterations)
	}
	if e.Iterations < 2 {
		t.Fatalf("expected multiple intervals, got %d", e.Iterations)
	}
}

func TestCanonicalFileDedups(t *testing.T) {
	// Graph with mutual edges: canonical file must hold each pair once.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}}
	a := graph.FromEdges(3, edges, true)
	img := graph.BuildImage(a, 0, nil)
	arr := ssd.NewArray(ssd.ArrayParams{Devices: 2, StripeSize: 64 * 4096})
	t.Cleanup(arr.Close)
	fs := safs.New(arr, safs.Config{})
	e, err := New(img, fs, "xs", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.buildCanonical(); err != nil {
		t.Fatal(err)
	}
	if e.canonEdges != 3 {
		t.Fatalf("canonical edges = %d, want 3", e.canonEdges)
	}
	got, err := e.TriangleCount()
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("tc = %d, want 1", got)
	}
}
