package powergraph

import (
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"flashgraph/internal/csr"
	"flashgraph/internal/graph"
)

// BFSApp is breadth-first search as a GAS program: no gather; Apply
// settles a vertex's level; Scatter activates undiscovered neighbors.
type BFSApp struct {
	Level []int32
}

// RunBFS executes BFS from src and returns levels.
func RunBFS(e *Engine, src graph.VertexID) *BFSApp {
	app := &BFSApp{Level: make([]int32, e.G.N)}
	for i := range app.Level {
		app.Level[i] = -1
	}
	app.Level[src] = 0
	prog := &bfsProg{app: app}
	e.Run(prog, []graph.VertexID{src}, false, 0)
	return app
}

type bfsProg struct{ app *BFSApp }

// PowerGraph expresses BFS in full GAS form: gather the minimum settled
// level over in-edges (boxed, like every PowerGraph gather), apply, and
// scatter a discovery signal over out-edges.
func (p *bfsProg) GatherDir() Dir { return In }
func (p *bfsProg) Gather(v, nbr graph.VertexID) Accum {
	if l := atomic.LoadInt32(&p.app.Level[nbr]); l >= 0 {
		return l + 1
	}
	return nil
}
func (p *bfsProg) Sum(a, b Accum) Accum {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.(int32) < b.(int32) {
		return a
	}
	return b
}
func (p *bfsProg) Apply(v graph.VertexID, acc Accum) bool {
	if acc == nil {
		// The source starts settled; everyone else waits for a parent.
		return atomic.LoadInt32(&p.app.Level[v]) >= 0
	}
	return atomic.CompareAndSwapInt32(&p.app.Level[v], -1, acc.(int32))
}
func (p *bfsProg) ScatterDir() Dir { return Out }
func (p *bfsProg) Scatter(v, nbr graph.VertexID) bool {
	return atomic.LoadInt32(&p.app.Level[nbr]) == -1
}

// PRApp is delta PageRank as a GAS program with boxed float64 gathers.
type PRApp struct {
	Scores []float64
	accum  []float64
	delta  []float64
	damp   float64
	thresh float64
}

// RunPageRank executes up to maxIters supersteps of delta PageRank.
func RunPageRank(e *Engine, maxIters int, damping, threshold float64) *PRApp {
	n := e.G.N
	app := &PRApp{
		Scores: make([]float64, n),
		accum:  make([]float64, n),
		delta:  make([]float64, n),
		damp:   damping,
		thresh: threshold,
	}
	for v := range app.accum {
		app.accum[v] = 1 - damping
	}
	prog := &prProg{app: app, g: e.G}
	e.Run(prog, nil, true, maxIters)
	return app
}

type prProg struct {
	app *PRApp
	g   *csr.Graph
	mu  sync.Mutex
}

func (p *prProg) GatherDir() Dir { return None }

func (p *prProg) Gather(v, nbr graph.VertexID) Accum { return nil }
func (p *prProg) Sum(a, b Accum) Accum               { return nil }

// Apply absorbs the accumulated delta (deposited by upstream scatters).
func (p *prProg) Apply(v graph.VertexID, acc Accum) bool {
	d := p.app.accum[v]
	if d <= p.app.thresh && d >= -p.app.thresh {
		return false
	}
	p.app.accum[v] = 0
	p.app.Scores[v] += d
	if deg := p.g.OutDegree(v); deg > 0 {
		p.app.delta[v] = p.app.damp * d / float64(deg)
		return true
	}
	return false
}

func (p *prProg) ScatterDir() Dir { return Out }

// Scatter pushes the share downstream; receivers activate when their
// accumulation crosses the threshold.
func (p *prProg) Scatter(v, nbr graph.VertexID) bool {
	share := p.app.delta[v]
	// PowerGraph's sync engine serializes conflicting edge updates; a
	// mutex per scatter models that cost honestly.
	p.mu.Lock()
	p.app.accum[nbr] += share
	above := p.app.accum[nbr] > p.app.thresh || p.app.accum[nbr] < -p.app.thresh
	p.mu.Unlock()
	return above
}

// WCCApp labels weakly connected components via min-label GAS. Labels
// are stored as int32 accessed atomically because gather reads neighbor
// labels concurrently with other vertices' applies (PowerGraph's sync
// engine snapshots; atomic min-convergence reaches the same fixpoint).
type WCCApp struct {
	labels []int32
}

// Labels returns the converged component labels.
func (a *WCCApp) Labels() []graph.VertexID {
	out := make([]graph.VertexID, len(a.labels))
	for v, l := range a.labels {
		out[v] = graph.VertexID(l)
	}
	return out
}

// RunWCC executes label propagation to convergence.
func RunWCC(e *Engine) *WCCApp {
	n := e.G.N
	app := &WCCApp{labels: make([]int32, n)}
	for v := range app.labels {
		app.labels[v] = int32(v)
	}
	prog := &wccProg{app: app}
	e.Run(prog, nil, true, 0)
	return app
}

type wccProg struct{ app *WCCApp }

func (p *wccProg) GatherDir() Dir { return Both }

// Gather boxes the neighbor's label (PowerGraph's generic gather type).
func (p *wccProg) Gather(v, nbr graph.VertexID) Accum {
	return atomic.LoadInt32(&p.app.labels[nbr])
}

func (p *wccProg) Sum(a, b Accum) Accum {
	if a.(int32) < b.(int32) {
		return a
	}
	return b
}

func (p *wccProg) Apply(v graph.VertexID, acc Accum) bool {
	if acc == nil {
		return false
	}
	l := acc.(int32)
	for {
		cur := atomic.LoadInt32(&p.app.labels[v])
		if l >= cur {
			return false
		}
		if atomic.CompareAndSwapInt32(&p.app.labels[v], cur, l) {
			return true
		}
	}
}

func (p *wccProg) ScatterDir() Dir { return Both }

func (p *wccProg) Scatter(v, nbr graph.VertexID) bool {
	// Neighbors re-examine themselves next superstep.
	return atomic.LoadInt32(&p.app.labels[v]) < atomic.LoadInt32(&p.app.labels[nbr])
}

// RunBC computes single-source Brandes centrality with GAS-style
// per-edge processing: a forward level-synchronous phase accumulating
// path counts, then a backward phase over levels.
func RunBC(e *Engine, src graph.VertexID) []float64 {
	g := e.G
	n := g.N
	level := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	sigma[src] = 1
	var buckets [][]graph.VertexID
	frontier := []graph.VertexID{src}
	for depth := int32(1); len(frontier) > 0; depth++ {
		buckets = append(buckets, frontier)
		var next []graph.VertexID
		var mu sync.Mutex
		e.parallel(len(frontier), func(lo, hi int) {
			var local []graph.VertexID
			for _, v := range frontier[lo:hi] {
				for _, u := range g.Out(v) {
					toll(u, 0)
					if atomic.CompareAndSwapInt32(&level[u], -1, depth) {
						local = append(local, u)
					}
					if atomic.LoadInt32(&level[u]) == depth {
						addFloat64(&sigma[u], sigma[v])
					}
				}
			}
			mu.Lock()
			next = append(next, local...)
			mu.Unlock()
		})
		frontier = next
	}
	for i := len(buckets) - 1; i >= 1; i-- {
		bucket := buckets[i]
		e.parallel(len(bucket), func(lo, hi int) {
			for _, w := range bucket[lo:hi] {
				f := (1 + delta[w]) / sigma[w]
				for _, v := range g.In(w) {
					toll(v, f)
					if level[v] == level[w]-1 {
						addFloat64(&delta[v], sigma[v]*f)
					}
				}
			}
		})
	}
	delta[src] = 0
	return delta
}

// addFloat64 atomically adds to a float64 via CAS on its bit pattern.
func addFloat64(p *float64, x float64) {
	addr := (*uint64)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint64(addr)
		nw := math.Float64frombits(old) + x
		if atomic.CompareAndSwapUint64(addr, old, math.Float64bits(nw)) {
			return
		}
	}
}

// RunTC counts triangles the way PowerGraph's toolkit does: each vertex
// gathers its neighbor set into a hash set, and every edge's
// intersection probes the set element-wise through the generic per-edge
// path (hash probing plus the boxed-functor toll — no hand-tuned sorted
// merges).
func RunTC(e *Engine) int64 {
	g := e.G
	nbrs := make([][]graph.VertexID, g.N)
	sets := make([]map[graph.VertexID]struct{}, g.N)
	var buf []graph.VertexID
	for v := 0; v < g.N; v++ {
		buf = g.Neighbors(graph.VertexID(v), buf)
		nbrs[v] = append([]graph.VertexID(nil), buf...)
		set := make(map[graph.VertexID]struct{}, len(buf))
		for _, u := range buf {
			set[u] = struct{}{}
		}
		sets[v] = set
	}
	var total int64
	e.parallel(g.N, func(lo, hi int) {
		var local int64
		for v := lo; v < hi; v++ {
			nv := nbrs[v]
			sv := sets[v]
			for _, u := range nv {
				if u <= graph.VertexID(v) {
					continue
				}
				// Probe the smaller endpoint's set with the larger list,
				// counting third corners above u.
				for _, w := range nbrs[u] {
					toll(w, 0)
					if w <= u {
						continue
					}
					if _, ok := sv[w]; ok {
						local++
					}
				}
			}
		}
		atomic.AddInt64(&total, local)
	})
	return total
}

// RunScanStat computes the max locality statistic with hash-set
// neighborhood gathers and no pruning — PowerGraph's GAS model has no
// custom vertex scheduler, which is exactly the paper's point about
// FlashGraph's flexible scheduling (§3.7).
func RunScanStat(e *Engine) int64 {
	g := e.G
	nbrs := make([][]graph.VertexID, g.N)
	sets := make([]map[graph.VertexID]struct{}, g.N)
	var buf []graph.VertexID
	for v := 0; v < g.N; v++ {
		buf = g.Neighbors(graph.VertexID(v), buf)
		nbrs[v] = append([]graph.VertexID(nil), buf...)
		set := make(map[graph.VertexID]struct{}, len(buf))
		for _, u := range buf {
			set[u] = struct{}{}
		}
		sets[v] = set
	}
	var best int64
	e.parallel(g.N, func(lo, hi int) {
		var localBest int64
		for v := lo; v < hi; v++ {
			nv := nbrs[v]
			sv := sets[v]
			var among int64
			for _, u := range nv {
				for _, w := range nbrs[u] {
					toll(w, 0)
					if _, ok := sv[w]; ok {
						among++
					}
				}
			}
			if scan := int64(len(nv)) + among/2; scan > localBest {
				localBest = scan
			}
		}
		for {
			cur := atomic.LoadInt64(&best)
			if localBest <= cur || atomic.CompareAndSwapInt64(&best, cur, localBest) {
				break
			}
		}
	})
	return best
}

// intersectGreater counts members of sorted a ∩ b strictly greater
// than x.
func intersectGreater(a, b []graph.VertexID, x graph.VertexID) int64 {
	i := upper(a, x)
	j := upper(b, x)
	var n int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// intersectAll counts |a ∩ b| for sorted slices.
func intersectAll(a, b []graph.VertexID) int64 {
	i, j := 0, 0
	var n int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func upper(s []graph.VertexID, x graph.VertexID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
