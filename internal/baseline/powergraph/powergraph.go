// Package powergraph is the repository's stand-in for PowerGraph
// (Gonzalez et al., OSDI'12), the distributed in-memory engine the paper
// compares against in §5.2 (run in multi-thread mode on one machine,
// synchronous engine).
//
// It implements a synchronous gather–apply–scatter (GAS) engine over an
// in-memory CSR. The characteristic PowerGraph costs are reproduced
// deliberately: per-edge virtual calls through the program interface,
// boxed accumulators (PowerGraph's generic gather type), and full
// gather/apply/scatter barriers each superstep. FlashGraph's §5.2 claim
// — a semi-external-memory engine can beat a general-purpose in-memory
// GAS engine — rests on exactly this abstraction overhead.
package powergraph

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"flashgraph/internal/csr"
	"flashgraph/internal/graph"
)

// Dir selects which edges a phase traverses.
type Dir int

const (
	// None skips the phase.
	None Dir = iota
	// In traverses in-edges.
	In
	// Out traverses out-edges.
	Out
	// Both traverses both directions.
	Both
)

// Accum is a boxed gather accumulation (PowerGraph's gather_type).
type Accum interface{}

// Program is a GAS vertex program.
type Program interface {
	// GatherDir selects the gather phase's edges.
	GatherDir() Dir
	// Gather returns the contribution of edge (v, nbr).
	Gather(v, nbr graph.VertexID) Accum
	// Sum merges two gather contributions.
	Sum(a, b Accum) Accum
	// Apply folds the gathered total (nil when no edges gathered) into
	// v's state and reports whether v's value changed (drives scatter).
	Apply(v graph.VertexID, acc Accum) bool
	// ScatterDir selects the scatter phase's edges.
	ScatterDir() Dir
	// Scatter inspects edge (v, nbr) and reports whether nbr activates
	// for the next superstep.
	Scatter(v, nbr graph.VertexID) bool
}

// Engine is a synchronous GAS engine.
type Engine struct {
	G       *csr.Graph
	Threads int

	active  []bool
	nextAct []int32
	changed []bool
}

// signal is the boxed unit PowerGraph routes along every edge: generic
// functor argument on gather, internal message on scatter. The stand-in
// charges this allocation for every edge traversal — it is the
// abstraction cost that separates general GAS engines from hand-written
// loops (and the substance of the paper's §5.2 comparison).
type signal struct {
	target graph.VertexID
	val    float64
}

// tollSink keeps toll allocations alive past escape analysis. The
// atomic store also models the engine's queue synchronization.
var tollSink unsafe.Pointer

// toll charges one edge traversal.
func toll(v graph.VertexID, x float64) {
	atomic.StorePointer(&tollSink, unsafe.Pointer(&signal{target: v, val: x}))
}

// New creates an engine over g.
func New(g *csr.Graph, threads int) *Engine {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &Engine{G: g, Threads: threads}
}

// forEachEdge walks v's edges in dir, invoking fn per edge.
func (e *Engine) forEachEdge(dir Dir, v graph.VertexID, fn func(nbr graph.VertexID)) {
	switch dir {
	case In:
		for _, u := range e.G.In(v) {
			fn(u)
		}
	case Out:
		for _, u := range e.G.Out(v) {
			fn(u)
		}
	case Both:
		for _, u := range e.G.Out(v) {
			fn(u)
		}
		if e.G.Directed {
			for _, u := range e.G.In(v) {
				fn(u)
			}
		}
	}
}

// parallel runs fn over [0, n) split across workers.
func (e *Engine) parallel(n int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (n + e.Threads - 1) / e.Threads
	for w := 0; w < e.Threads; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RunStats summarizes an execution.
type RunStats struct {
	Supersteps  int
	EdgesGather int64
	EdgesScat   int64
}

// Run executes prog from the seed set until no vertex activates or
// maxIters supersteps elapse (0 = unbounded).
func (e *Engine) Run(prog Program, seeds []graph.VertexID, activateAll bool, maxIters int) RunStats {
	n := e.G.N
	e.active = make([]bool, n)
	e.nextAct = make([]int32, n)
	e.changed = make([]bool, n)
	activeCount := 0
	if activateAll {
		for v := range e.active {
			e.active[v] = true
		}
		activeCount = n
	} else {
		for _, v := range seeds {
			if !e.active[v] {
				e.active[v] = true
				activeCount++
			}
		}
	}

	var st RunStats
	for activeCount > 0 {
		if maxIters > 0 && st.Supersteps >= maxIters {
			break
		}
		st.Supersteps++
		gdir := prog.GatherDir()
		sdir := prog.ScatterDir()

		// Gather + Apply (barrier between handled per vertex: gather
		// reads neighbor state of the previous superstep by convention;
		// programs keep two-version state where required).
		var gathered int64
		e.parallel(n, func(lo, hi int) {
			var local int64
			for v := lo; v < hi; v++ {
				if !e.active[v] {
					continue
				}
				var acc Accum
				if gdir != None {
					e.forEachEdge(gdir, graph.VertexID(v), func(u graph.VertexID) {
						toll(u, 0)
						c := prog.Gather(graph.VertexID(v), u)
						local++
						if acc == nil {
							acc = c
						} else {
							acc = prog.Sum(acc, c)
						}
					})
				}
				e.changed[v] = prog.Apply(graph.VertexID(v), acc)
			}
			atomic.AddInt64(&gathered, local)
		})
		st.EdgesGather += gathered

		// Scatter.
		var scattered int64
		e.parallel(n, func(lo, hi int) {
			var local int64
			for v := lo; v < hi; v++ {
				if !e.active[v] || !e.changed[v] {
					continue
				}
				if sdir != None {
					e.forEachEdge(sdir, graph.VertexID(v), func(u graph.VertexID) {
						toll(u, 0)
						local++
						if prog.Scatter(graph.VertexID(v), u) {
							atomic.StoreInt32(&e.nextAct[u], 1)
						}
					})
				}
			}
			atomic.AddInt64(&scattered, local)
		})
		st.EdgesScat += scattered

		// Swap activation sets.
		activeCount = 0
		for v := 0; v < n; v++ {
			e.active[v] = atomic.LoadInt32(&e.nextAct[v]) == 1
			e.nextAct[v] = 0
			if e.active[v] {
				activeCount++
			}
		}
	}
	return st
}
