package powergraph

import (
	"math"
	"testing"

	"flashgraph/internal/baseline/galois"
	"flashgraph/internal/csr"
	"flashgraph/internal/gen"
	"flashgraph/internal/graph"
)

func rmatCSR(t *testing.T, scale, epv int, seed uint64) *csr.Graph {
	t.Helper()
	a := graph.FromEdges(1<<scale, gen.RMAT(scale, epv, seed), true)
	a.Dedup()
	return csr.FromAdjacency(a)
}

func TestBFSMatchesGalois(t *testing.T) {
	g := rmatCSR(t, 10, 8, 1)
	want := galois.BFS(g, 0)
	got := RunBFS(New(g, 4), 0)
	for v := range want {
		if got.Level[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, got.Level[v], want[v])
		}
	}
}

func TestPageRankMatchesGalois(t *testing.T) {
	g := rmatCSR(t, 9, 8, 2)
	want := galois.PageRankDelta(g, 30, 0.85, 1e-7)
	got := RunPageRank(New(g, 4), 30, 0.85, 1e-7)
	for v := range want {
		if math.Abs(got.Scores[v]-want[v]) > 1e-5*(1+want[v]) {
			t.Fatalf("pr[%d] = %v, want %v", v, got.Scores[v], want[v])
		}
	}
}

func TestWCCMatchesGalois(t *testing.T) {
	var edges []graph.Edge
	for b := 0; b < 3; b++ {
		for _, e := range gen.RMAT(7, 4, uint64(b+5)) {
			off := graph.VertexID(b << 7)
			edges = append(edges, graph.Edge{Src: e.Src + off, Dst: e.Dst + off})
		}
	}
	a := graph.FromEdges(3<<7, edges, true)
	a.Dedup()
	g := csr.FromAdjacency(a)
	want := galois.WCC(g)
	got := RunWCC(New(g, 4)).Labels()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBCMatchesGalois(t *testing.T) {
	g := rmatCSR(t, 9, 6, 3)
	want := galois.BC(g, 0)
	got := RunBC(New(g, 4), 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6*(1+want[v]) {
			t.Fatalf("bc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestTCMatchesGalois(t *testing.T) {
	g := rmatCSR(t, 8, 6, 4)
	want, _ := galois.TriangleCount(g)
	if got := RunTC(New(g, 4)); got != want {
		t.Fatalf("tc = %d, want %d", got, want)
	}
}

func TestScanStatMatchesGalois(t *testing.T) {
	g := rmatCSR(t, 8, 6, 5)
	want, _ := galois.ScanStat(g)
	if got := RunScanStat(New(g, 4)); got != want {
		t.Fatalf("scan = %d, want %d", got, want)
	}
}

func TestEngineCountsEdgeWork(t *testing.T) {
	g := rmatCSR(t, 8, 6, 6)
	e := New(g, 4)
	st := e.Run(&wccProg{app: &WCCApp{labels: initLabels(g.N)}}, nil, true, 0)
	if st.Supersteps == 0 || st.EdgesGather == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func initLabels(n int) []int32 {
	l := make([]int32, n)
	for i := range l {
		l[i] = int32(i)
	}
	return l
}

func TestMaxItersBounds(t *testing.T) {
	g := rmatCSR(t, 8, 6, 7)
	st := New(g, 4).Run(&wccProg{app: &WCCApp{labels: initLabels(g.N)}}, nil, true, 2)
	if st.Supersteps > 2 {
		t.Fatalf("supersteps = %d, want <= 2", st.Supersteps)
	}
}
