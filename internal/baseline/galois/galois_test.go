package galois

import (
	"testing"

	"flashgraph/internal/csr"
	"flashgraph/internal/gen"
	"flashgraph/internal/graph"
)

func line(t *testing.T, n int) *csr.Graph {
	t.Helper()
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
	}
	return csr.FromAdjacency(graph.FromEdges(n, edges, true))
}

func rmat(t *testing.T, scale, epv int, seed uint64) *csr.Graph {
	t.Helper()
	a := graph.FromEdges(1<<scale, gen.RMAT(scale, epv, seed), true)
	a.Dedup()
	return csr.FromAdjacency(a)
}

func TestBFSLine(t *testing.T) {
	g := line(t, 10)
	level := BFS(g, 0)
	for v := 0; v < 10; v++ {
		if level[v] != int32(v) {
			t.Fatalf("level[%d] = %d, want %d", v, level[v], v)
		}
	}
	level2 := BFS(g, 5)
	if level2[4] != -1 || level2[9] != 4 {
		t.Fatalf("directed line from 5: %v", level2)
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := csr.FromAdjacency(graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}}, true))
	level := BFS(g, 0)
	if level[2] != -1 || level[3] != -1 {
		t.Fatalf("unreachable vertices should be -1: %v", level)
	}
}

func TestBFSParallelMatchesSequential(t *testing.T) {
	g := rmat(t, 11, 8, 1)
	got := BFS(g, 0)
	// Sequential reference.
	want := make([]int32, g.N)
	for i := range want {
		want[i] = -1
	}
	want[0] = 0
	q := []graph.VertexID{0}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range g.Out(v) {
			if want[u] == -1 {
				want[u] = want[v] + 1
				q = append(q, u)
			}
		}
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBCKnownGraph(t *testing.T) {
	// Path 0 -> 1 -> 2: vertex 1 lies on the only 0->2 path.
	g := line(t, 3)
	bc := BC(g, 0)
	if bc[1] != 1 {
		t.Fatalf("bc[1] = %v, want 1", bc[1])
	}
	if bc[0] != 0 || bc[2] != 0 {
		t.Fatalf("endpoints should be 0: %v", bc)
	}
}

func TestBCDiamond(t *testing.T) {
	// 0 -> {1,2} -> 3: two shortest paths; each middle vertex gets 0.5.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}}
	g := csr.FromAdjacency(graph.FromEdges(4, edges, true))
	bc := BC(g, 0)
	if bc[1] != 0.5 || bc[2] != 0.5 {
		t.Fatalf("bc = %v, want middles 0.5", bc)
	}
}

func TestPageRankDeltaConverges(t *testing.T) {
	g := rmat(t, 10, 8, 2)
	pr := PageRankDelta(g, 100, 0.85, 1e-9)
	// Sum of PageRank over a graph with dangling vertices is <= N; all
	// values positive; hubs rank above the minimum.
	var sum, min, max float64
	min = 1e18
	for _, p := range pr {
		if p <= 0 {
			t.Fatalf("non-positive rank %v", p)
		}
		sum += p
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max <= min {
		t.Fatal("PageRank is flat — power-law graph must differentiate")
	}
	if sum < float64(g.N)*(1-0.85)*0.99 {
		t.Fatalf("sum = %v too small", sum)
	}
}

func TestPageRankProportionsOnCycle(t *testing.T) {
	// Symmetric cycle: all ranks equal 1.
	g := csr.FromAdjacency(graph.FromEdges(4, gen.Ring(4, 0, 0), true))
	pr := PageRankDelta(g, 200, 0.85, 1e-12)
	for v, p := range pr {
		if p < 0.999 || p > 1.001 {
			t.Fatalf("pr[%d] = %v, want 1.0", v, p)
		}
	}
}

func TestWCCTwoComponents(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 4, Dst: 3}}
	g := csr.FromAdjacency(graph.FromEdges(5, edges, true))
	labels := WCC(g)
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 0 {
		t.Fatalf("component A mislabeled: %v", labels)
	}
	if labels[3] != 3 || labels[4] != 3 {
		t.Fatalf("component B should take min ID 3: %v", labels)
	}
}

func TestWCCIgnoresDirection(t *testing.T) {
	// 0 -> 1 <- 2 is weakly connected.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}}
	g := csr.FromAdjacency(graph.FromEdges(3, edges, true))
	labels := WCC(g)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("weak connectivity violated: %v", labels)
	}
}

func TestTriangleCountKnown(t *testing.T) {
	// Triangle 0-1-2 plus a pendant 2-3 (undirected encoding).
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}, {Src: 2, Dst: 3}}
	g := csr.FromAdjacency(graph.FromEdges(4, edges, false))
	total, per := TriangleCount(g)
	if total != 1 {
		t.Fatalf("total = %d, want 1", total)
	}
	for v, want := range []int64{1, 1, 1, 0} {
		if per[v] != want {
			t.Fatalf("per[%d] = %d, want %d", v, per[v], want)
		}
	}
}

func TestTriangleCountDirectedDedup(t *testing.T) {
	// Both directions of the same undirected triangle: still one.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2}, {Src: 2, Dst: 1},
		{Src: 0, Dst: 2}, {Src: 2, Dst: 0},
	}
	g := csr.FromAdjacency(graph.FromEdges(3, edges, true))
	total, _ := TriangleCount(g)
	if total != 1 {
		t.Fatalf("total = %d, want 1", total)
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	a := graph.FromEdges(1<<7, gen.RMAT(7, 6, 3), true)
	a.Dedup()
	g := csr.FromAdjacency(a)
	total, _ := TriangleCount(g)

	// Brute force over the undirected adjacency matrix.
	adj := make([][]bool, g.N)
	for i := range adj {
		adj[i] = make([]bool, g.N)
	}
	for v := 0; v < g.N; v++ {
		for _, u := range g.Out(graph.VertexID(v)) {
			if int(u) != v {
				adj[v][u] = true
				adj[u][v] = true
			}
		}
	}
	var want int64
	for v := 0; v < g.N; v++ {
		for u := v + 1; u < g.N; u++ {
			if !adj[v][u] {
				continue
			}
			for w := u + 1; w < g.N; w++ {
				if adj[v][w] && adj[u][w] {
					want++
				}
			}
		}
	}
	if total != want {
		t.Fatalf("TriangleCount = %d, brute force = %d", total, want)
	}
}

func TestScanStatKnown(t *testing.T) {
	// Star 0-{1,2,3} plus edge 1-2: scan(0) = 3 + 1 = 4 (neighborhood
	// of 0 contains all 4 edges).
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 1, Dst: 2}}
	g := csr.FromAdjacency(graph.FromEdges(4, edges, false))
	max, arg := ScanStat(g)
	if max != 4 || arg != 0 {
		t.Fatalf("scan = (%d, %d), want (4, 0)", max, arg)
	}
}

func TestScanStatMatchesExhaustive(t *testing.T) {
	a := graph.FromEdges(1<<7, gen.RMAT(7, 5, 4), true)
	a.Dedup()
	g := csr.FromAdjacency(a)
	gotMax, _ := ScanStat(g)

	// Exhaustive scan over every vertex, no pruning.
	var nbuf, ubuf []graph.VertexID
	mark := make([]bool, g.N)
	var want int64
	for v := 0; v < g.N; v++ {
		nbuf = g.Neighbors(graph.VertexID(v), nbuf)
		for _, u := range nbuf {
			mark[u] = true
		}
		var among int64
		for _, u := range nbuf {
			ubuf = g.Neighbors(u, ubuf)
			for _, w := range ubuf {
				if mark[w] {
					among++
				}
			}
		}
		for _, u := range nbuf {
			mark[u] = false
		}
		if scan := int64(len(nbuf)) + among/2; scan > want {
			want = scan
		}
	}
	if gotMax != want {
		t.Fatalf("ScanStat = %d, exhaustive = %d", gotMax, want)
	}
}

func TestSSSPLineWeights(t *testing.T) {
	g := line(t, 5)
	w := func(v graph.VertexID, i int) uint32 { return uint32(v) + 1 }
	dist := SSSP(g, 0, w)
	// 0 ->(1) 1 ->(2) 2 ->(3) 3 ->(4) 4: cumulative 0,1,3,6,10.
	want := []uint64{0, 1, 3, 6, 10}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g := csr.FromAdjacency(graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}}, true))
	dist := SSSP(g, 0, func(graph.VertexID, int) uint32 { return 1 })
	if dist[2] != ^uint64(0) {
		t.Fatalf("dist[2] = %d, want inf", dist[2])
	}
}

func TestEstimateDiameterLine(t *testing.T) {
	g := line(t, 20)
	if d := EstimateDiameter(g, 10); d != 19 {
		t.Fatalf("diameter = %d, want 19", d)
	}
}

func TestEstimateDiameterRing(t *testing.T) {
	g := csr.FromAdjacency(graph.FromEdges(10, gen.Ring(10, 0, 0), true))
	// Undirected ring of 10: diameter 5.
	if d := EstimateDiameter(g, 0); d != 5 {
		t.Fatalf("diameter = %d, want 5", d)
	}
}
