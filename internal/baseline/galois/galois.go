// Package galois is the repository's stand-in for Galois (Nguyen et
// al., SOSP'13), the state-of-the-art in-memory engine the paper
// compares against in §5.2: hand-optimized algorithms over an in-memory
// CSR with no engine abstraction in the hot loops. These implementations
// also serve as the correctness oracles for the FlashGraph versions.
package galois

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"flashgraph/internal/csr"
	"flashgraph/internal/graph"
)

// BFS computes the BFS level of every vertex from src over out-edges
// (-1 = unreachable), with a parallel level-synchronous frontier.
func BFS(g *csr.Graph, src graph.VertexID) []int32 {
	level := make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []graph.VertexID{src}
	workers := runtime.GOMAXPROCS(0)
	for depth := int32(1); len(frontier) > 0; depth++ {
		nexts := make([][]graph.VertexID, workers)
		var wg sync.WaitGroup
		chunk := (len(frontier) + workers - 1) / workers
		for wkr := 0; wkr < workers; wkr++ {
			lo := wkr * chunk
			if lo >= len(frontier) {
				break
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(wkr, lo, hi int) {
				defer wg.Done()
				var next []graph.VertexID
				for _, v := range frontier[lo:hi] {
					for _, u := range g.Out(v) {
						if atomic.CompareAndSwapInt32(&level[u], -1, depth) {
							next = append(next, u)
						}
					}
				}
				nexts[wkr] = next
			}(wkr, lo, hi)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, n := range nexts {
			frontier = append(frontier, n...)
		}
	}
	return level
}

// BC computes betweenness-centrality contributions from a single source
// via Brandes' algorithm (forward BFS accumulating path counts, then
// backward propagation of dependencies) — the paper's BC workload.
func BC(g *csr.Graph, src graph.VertexID) []float64 {
	level := make([]int32, g.N)
	sigma := make([]float64, g.N)
	delta := make([]float64, g.N)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	sigma[src] = 1
	var order []graph.VertexID // BFS visit order
	frontier := []graph.VertexID{src}
	for depth := int32(1); len(frontier) > 0; depth++ {
		order = append(order, frontier...)
		var next []graph.VertexID
		for _, v := range frontier {
			for _, u := range g.Out(v) {
				if level[u] == -1 {
					level[u] = depth
					next = append(next, u)
				}
				if level[u] == depth {
					sigma[u] += sigma[v]
				}
			}
		}
		frontier = next
	}
	// Back propagation in reverse BFS order.
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, v := range g.In(w) {
			if level[v] == level[w]-1 && sigma[w] > 0 {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
		}
	}
	delta[src] = 0
	return delta
}

// PageRankDelta runs the paper's delta-based PageRank [30]: vertices
// push the change of their rank to out-neighbors; a vertex whose
// accumulated delta exceeds threshold activates for the next iteration.
// Runs at most maxIters iterations (the paper uses 30, like Pregel).
func PageRankDelta(g *csr.Graph, maxIters int, damping, threshold float64) []float64 {
	pr := make([]float64, g.N)
	accum := make([]float64, g.N)
	active := make([]bool, g.N)
	for v := range pr {
		accum[v] = 1 - damping
		active[v] = true
	}
	for iter := 0; iter < maxIters; iter++ {
		// Absorb accumulated deltas and push them (mirrors the
		// FlashGraph program: Run absorbs, RunOnVertex multicasts).
		pushed := false
		deltas := make([]float64, g.N)
		for v := 0; v < g.N; v++ {
			if !active[v] {
				continue
			}
			d := accum[v]
			accum[v] = 0
			pr[v] += d
			deltas[v] = d
			active[v] = false
		}
		for v := 0; v < g.N; v++ {
			if deltas[v] == 0 {
				continue
			}
			outs := g.Out(graph.VertexID(v))
			if len(outs) == 0 {
				continue
			}
			share := damping * deltas[v] / float64(len(outs))
			for _, u := range outs {
				accum[u] += share
			}
			pushed = true
		}
		if !pushed {
			break
		}
		any := false
		for v := 0; v < g.N; v++ {
			if accum[v] > threshold || accum[v] < -threshold {
				active[v] = true
				any = true
			}
		}
		if !any {
			break
		}
	}
	return pr
}

// PPRDelta runs delta-based personalized PageRank: all restart mass
// starts at src, and pushes follow out-edges with probability
// proportional to weight(v, i) (nil or all-zero weights = uniform).
// The correctness oracle for algo.PPR.
func PPRDelta(g *csr.Graph, src graph.VertexID, maxIters int, damping, threshold float64, weight func(v graph.VertexID, i int) uint32) []float64 {
	pr := make([]float64, g.N)
	accum := make([]float64, g.N)
	active := make([]bool, g.N)
	accum[src] = 1 - damping
	active[src] = true
	for iter := 0; iter < maxIters; iter++ {
		deltas := make([]float64, g.N)
		for v := 0; v < g.N; v++ {
			if !active[v] {
				continue
			}
			d := accum[v]
			accum[v] = 0
			pr[v] += d
			deltas[v] = d
			active[v] = false
		}
		pushed := false
		for v := 0; v < g.N; v++ {
			if deltas[v] == 0 {
				continue
			}
			outs := g.Out(graph.VertexID(v))
			if len(outs) == 0 {
				continue
			}
			var total uint64
			if weight != nil {
				for i := range outs {
					total += uint64(weight(graph.VertexID(v), i))
				}
			}
			if total > 0 {
				scale := damping * deltas[v] / float64(total)
				for i, u := range outs {
					if w := weight(graph.VertexID(v), i); w > 0 {
						accum[u] += scale * float64(w)
					}
				}
			} else {
				share := damping * deltas[v] / float64(len(outs))
				for _, u := range outs {
					accum[u] += share
				}
			}
			pushed = true
		}
		if !pushed {
			break
		}
		any := false
		for v := 0; v < g.N; v++ {
			if accum[v] > threshold || accum[v] < -threshold {
				active[v] = true
				any = true
			}
		}
		if !any {
			break
		}
	}
	return pr
}

// WCC labels weakly connected components (direction ignored) with the
// smallest member vertex ID, via union-find with path compression.
func WCC(g *csr.Graph) []graph.VertexID {
	parent := make([]graph.VertexID, g.N)
	for i := range parent {
		parent[i] = graph.VertexID(i)
	}
	var find func(v graph.VertexID) graph.VertexID
	find = func(v graph.VertexID) graph.VertexID {
		for parent[v] != v {
			parent[v] = parent[parent[v]] // path halving
			v = parent[v]
		}
		return v
	}
	union := func(a, b graph.VertexID) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb { // smaller ID wins: labels become min member IDs
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := 0; v < g.N; v++ {
		for _, u := range g.Out(graph.VertexID(v)) {
			union(graph.VertexID(v), u)
		}
	}
	labels := make([]graph.VertexID, g.N)
	for v := range labels {
		labels[v] = find(graph.VertexID(v))
	}
	return labels
}

// TriangleCount counts undirected triangles (each once) and returns the
// total plus per-vertex counts (triangles containing each vertex) — the
// per-vertex counts mirror FlashGraph's TC, where a counting vertex
// notifies the other two by message [§4].
func TriangleCount(g *csr.Graph) (int64, []int64) {
	// Materialize the undirected, deduplicated neighbor lists once.
	nbrs := make([][]graph.VertexID, g.N)
	var buf []graph.VertexID
	for v := 0; v < g.N; v++ {
		buf = g.Neighbors(graph.VertexID(v), buf)
		nbrs[v] = append([]graph.VertexID(nil), buf...)
	}
	per := make([]int64, g.N)
	var total int64
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	var next int64
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := int(atomic.AddInt64(&next, 1)) - 1
				if v >= g.N {
					return
				}
				nv := nbrs[v]
				for _, u := range nv {
					if u <= graph.VertexID(v) {
						continue
					}
					// Intersect nv and nbrs[u], counting w > u.
					nu := nbrs[u]
					i := sort.Search(len(nv), func(k int) bool { return nv[k] > u })
					j := sort.Search(len(nu), func(k int) bool { return nu[k] > u })
					for i < len(nv) && j < len(nu) {
						switch {
						case nv[i] < nu[j]:
							i++
						case nv[i] > nu[j]:
							j++
						default:
							w := nv[i]
							atomic.AddInt64(&total, 1)
							atomic.AddInt64(&per[v], 1)
							atomic.AddInt64(&per[u], 1)
							atomic.AddInt64(&per[w], 1)
							i++
							j++
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	return total, per
}

// ScanStat computes the maximum locality statistic: the largest number
// of edges in any vertex's closed neighborhood (v plus its neighbors,
// direction ignored), with the degree-descending early-termination
// optimization of [27] that FlashGraph's custom scheduler exploits.
func ScanStat(g *csr.Graph) (int64, graph.VertexID) {
	order := make([]graph.VertexID, g.N)
	for i := range order {
		order[i] = graph.VertexID(i)
	}
	deg := func(v graph.VertexID) int {
		d := g.OutDegree(v)
		if g.Directed {
			d += g.InDegree(v)
		}
		return d
	}
	sort.Slice(order, func(i, j int) bool { return deg(order[i]) > deg(order[j]) })

	mark := make([]bool, g.N)
	var best int64 = -1
	var argmax graph.VertexID
	var nbuf, ubuf []graph.VertexID
	for _, v := range order {
		nbuf = g.Neighbors(v, nbuf)
		d := int64(len(nbuf))
		// Upper bound: all neighbor pairs adjacent.
		if bound := d + d*(d-1)/2; bound <= best {
			break // remaining vertices have even smaller degree
		}
		for _, u := range nbuf {
			mark[u] = true
		}
		var among int64
		for _, u := range nbuf {
			ubuf = g.Neighbors(u, ubuf)
			for _, w := range ubuf {
				if mark[w] {
					among++
				}
			}
		}
		for _, u := range nbuf {
			mark[u] = false
		}
		scan := d + among/2 // each neighbor-pair edge seen twice
		if scan > best {
			best = scan
			argmax = v
		}
	}
	return best, argmax
}

// SSSP computes single-source shortest paths over out-edges with
// non-negative integer weights (Dijkstra). weight(v, i) returns the
// weight of v's i-th out-edge. Unreachable vertices get ^uint64(0).
func SSSP(g *csr.Graph, src graph.VertexID, weight func(v graph.VertexID, i int) uint32) []uint64 {
	const inf = ^uint64(0)
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	h := &distHeap{{src, 0}}
	for h.Len() > 0 {
		top := h.pop()
		if top.d != dist[top.v] {
			continue
		}
		for i, u := range g.Out(top.v) {
			nd := top.d + uint64(weight(top.v, i))
			if nd < dist[u] {
				dist[u] = nd
				h.push(distEntry{u, nd})
			}
		}
	}
	return dist
}

type distEntry struct {
	v graph.VertexID
	d uint64
}

// distHeap is a minimal binary min-heap on distance.
type distHeap []distEntry

func (h distHeap) Len() int { return len(h) }
func (h *distHeap) push(e distEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].d <= (*h)[i].d {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}
func (h *distHeap) pop() distEntry {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*h) && (*h)[l].d < (*h)[small].d {
			small = l
		}
		if r < len(*h) && (*h)[r].d < (*h)[small].d {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// KCore marks the vertices of the k-core: the maximal subgraph in which
// every vertex has undirected degree >= k. Returns alive flags (iterative
// peeling).
func KCore(g *csr.Graph, k int) []bool {
	alive := make([]bool, g.N)
	deg := make([]int, g.N)
	var buf []graph.VertexID
	nbrs := make([][]graph.VertexID, g.N)
	for v := 0; v < g.N; v++ {
		buf = g.Neighbors(graph.VertexID(v), buf)
		nbrs[v] = append([]graph.VertexID(nil), buf...)
		deg[v] = len(nbrs[v])
		alive[v] = true
	}
	var queue []graph.VertexID
	for v := 0; v < g.N; v++ {
		if deg[v] < k {
			queue = append(queue, graph.VertexID(v))
			alive[v] = false
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range nbrs[v] {
			if !alive[u] {
				continue
			}
			deg[u]--
			if deg[u] < k {
				alive[u] = false
				queue = append(queue, u)
			}
		}
	}
	return alive
}

// EstimateDiameter estimates the diameter ignoring edge direction by a
// double BFS sweep (Table 1's diameter column notes direction is
// ignored).
func EstimateDiameter(g *csr.Graph, start graph.VertexID) int {
	far, d1 := undirectedEccentricity(g, start)
	_, d2 := undirectedEccentricity(g, far)
	if d2 > d1 {
		return d2
	}
	return d1
}

// undirectedEccentricity BFSes ignoring direction, returning the
// farthest vertex and its distance.
func undirectedEccentricity(g *csr.Graph, src graph.VertexID) (graph.VertexID, int) {
	seen := make([]bool, g.N)
	seen[src] = true
	frontier := []graph.VertexID{src}
	far, depth := src, 0
	for d := 1; len(frontier) > 0; d++ {
		var next []graph.VertexID
		for _, v := range frontier {
			expand := func(u graph.VertexID) {
				if !seen[u] {
					seen[u] = true
					next = append(next, u)
				}
			}
			for _, u := range g.Out(v) {
				expand(u)
			}
			if g.Directed {
				for _, u := range g.In(v) {
					expand(u)
				}
			}
		}
		if len(next) > 0 {
			far, depth = next[0], d
		}
		frontier = next
	}
	return far, depth
}
