// Package csr provides a compressed-sparse-row in-memory graph. It is
// the substrate for the in-memory baseline engines (the paper's Galois
// and PowerGraph comparisons, §5.2) and the correctness oracle for the
// FlashGraph algorithms.
package csr

import (
	"sort"

	"flashgraph/internal/graph"
)

// Graph is a CSR-encoded graph. For directed graphs both directions are
// materialized; undirected graphs use Out only (each edge appears in
// both endpoints' rows).
type Graph struct {
	N        int
	Directed bool
	OutPtr   []int64
	OutAdj   []graph.VertexID
	InPtr    []int64
	InAdj    []graph.VertexID
}

// FromAdjacency flattens adjacency lists into CSR form.
func FromAdjacency(a *graph.Adjacency) *Graph {
	g := &Graph{N: a.N, Directed: a.Directed}
	g.OutPtr, g.OutAdj = flatten(a.Out)
	if a.Directed {
		g.InPtr, g.InAdj = flatten(a.In)
	}
	return g
}

func flatten(lists [][]graph.VertexID) ([]int64, []graph.VertexID) {
	ptr := make([]int64, len(lists)+1)
	var total int64
	for i, l := range lists {
		ptr[i] = total
		total += int64(len(l))
	}
	ptr[len(lists)] = total
	adj := make([]graph.VertexID, total)
	off := int64(0)
	for _, l := range lists {
		copy(adj[off:], l)
		off += int64(len(l))
	}
	return ptr, adj
}

// Out returns v's out-neighbors (sorted by ID).
func (g *Graph) Out(v graph.VertexID) []graph.VertexID {
	return g.OutAdj[g.OutPtr[v]:g.OutPtr[v+1]]
}

// In returns v's in-neighbors; for undirected graphs this is Out.
func (g *Graph) In(v graph.VertexID) []graph.VertexID {
	if !g.Directed {
		return g.Out(v)
	}
	return g.InAdj[g.InPtr[v]:g.InPtr[v+1]]
}

// OutDegree returns len(Out(v)).
func (g *Graph) OutDegree(v graph.VertexID) int {
	return int(g.OutPtr[v+1] - g.OutPtr[v])
}

// InDegree returns len(In(v)).
func (g *Graph) InDegree(v graph.VertexID) int {
	if !g.Directed {
		return g.OutDegree(v)
	}
	return int(g.InPtr[v+1] - g.InPtr[v])
}

// NumEdges returns the number of directed edges (undirected: each edge
// counted once).
func (g *Graph) NumEdges() int64 {
	n := g.OutPtr[g.N]
	if !g.Directed {
		return n / 2
	}
	return n
}

// Neighbors returns v's neighbors ignoring direction, sorted and
// deduplicated, appended to buf. Triangle counting and scan statistics
// operate on this undirected view.
func (g *Graph) Neighbors(v graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	buf = buf[:0]
	buf = append(buf, g.Out(v)...)
	if g.Directed {
		buf = append(buf, g.In(v)...)
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	}
	// Dedup (and drop self loops).
	out := buf[:0]
	var prev graph.VertexID = graph.InvalidVertex
	for _, u := range buf {
		if u == v || u == prev {
			continue
		}
		out = append(out, u)
		prev = u
	}
	return out
}
