package csr

import (
	"testing"

	"flashgraph/internal/gen"
	"flashgraph/internal/graph"
)

func TestFromAdjacencyDirected(t *testing.T) {
	a := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 3, Dst: 0}}, true)
	g := FromAdjacency(a)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Fatalf("degrees of 0: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	out := g.Out(0)
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("out(0) = %v", out)
	}
	in := g.In(0)
	if len(in) != 1 || in[0] != 3 {
		t.Fatalf("in(0) = %v", in)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestFromAdjacencyUndirected(t *testing.T) {
	a := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	g := FromAdjacency(a)
	if g.NumEdges() != 2 {
		t.Fatalf("undirected edges = %d, want 2", g.NumEdges())
	}
	if g.InDegree(1) != g.OutDegree(1) || g.OutDegree(1) != 2 {
		t.Fatalf("degree(1) = %d", g.OutDegree(1))
	}
}

func TestNeighborsMergesAndDedups(t *testing.T) {
	// 0 <-> 1 mutual edge plus 0 -> 2: undirected neighbors of 0 are
	// {1, 2} exactly once each.
	a := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 0, Dst: 2}}, true)
	g := FromAdjacency(a)
	nbrs := g.Neighbors(0, nil)
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 2 {
		t.Fatalf("neighbors(0) = %v", nbrs)
	}
}

func TestNeighborsExcludesSelfLoop(t *testing.T) {
	a := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}}, true)
	g := FromAdjacency(a)
	nbrs := g.Neighbors(0, nil)
	if len(nbrs) != 1 || nbrs[0] != 1 {
		t.Fatalf("neighbors(0) = %v", nbrs)
	}
}

func TestCSRMatchesAdjacency(t *testing.T) {
	a := graph.FromEdges(1<<9, gen.RMAT(9, 6, 1), true)
	a.Dedup()
	g := FromAdjacency(a)
	for v := 0; v < a.N; v++ {
		out := g.Out(graph.VertexID(v))
		if len(out) != len(a.Out[v]) {
			t.Fatalf("out(%d): %d vs %d", v, len(out), len(a.Out[v]))
		}
		for i := range out {
			if out[i] != a.Out[v][i] {
				t.Fatalf("out(%d)[%d] mismatch", v, i)
			}
		}
	}
}
