// Package extsort implements an external merge sort for fixed-size
// edge records, the substrate of FlashGraph's out-of-core graph
// construction. The paper treats image construction as a first-class
// cost (Table 2 "init time") on graphs whose edge lists dwarf RAM;
// related out-of-core systems (GraphChi's shards, M-Flash's blocks,
// NXgraph's intervals) all begin with exactly this primitive: sort an
// edge stream on disk under a memory budget.
//
// A Sorter accepts (key, value) uint32 pairs — (src, dst) for
// out-edge lists, (dst, src) for in-edge lists — buffers them packed
// as uint64s, and spills sorted runs to temporary files whenever the
// buffer reaches the memory budget. Sort finalizes the input; Iter
// then merges the runs with a k-way heap. Iter may be called multiple
// times: the sorted runs are kept on disk until Close, so the graph
// image writer can take its two passes (degree pass, then record
// pass) over the same sorted stream without re-sorting.
package extsort

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
)

// recordBytes is the on-disk size of one packed record.
const recordBytes = 8

// Config parameterizes a Sorter. The zero value sorts in 64MiB of
// buffer with runs spilled to the default temp directory.
type Config struct {
	// MemBytes bounds the in-memory record buffer. Records are 8 bytes,
	// so the buffer holds MemBytes/8 records between spills. Default
	// 64MiB.
	MemBytes int64
	// TmpDir receives the spilled run files (os.CreateTemp naming).
	// Default: the system temp directory.
	TmpDir string
	// MaxFanIn caps how many runs one merge reads at once; more runs
	// than this are first combined by intermediate merge passes, keeping
	// merge memory bounded at MaxFanIn × the per-run read buffer.
	// Default 128.
	MaxFanIn int
	// ReadBufBytes sizes each run's merge read buffer. Default 256KiB.
	ReadBufBytes int
}

func (c *Config) setDefaults() {
	if c.MemBytes <= 0 {
		c.MemBytes = 64 << 20
	}
	if c.MaxFanIn <= 0 {
		c.MaxFanIn = 128
	}
	if c.ReadBufBytes <= 0 {
		c.ReadBufBytes = 256 << 10
	}
}

// Sorter is an external sorter for (key, value) uint32 pairs, ordered
// by key then value. Add until done, call Sort once, then Iter any
// number of times. A Sorter is not safe for concurrent use.
type Sorter struct {
	cfg    Config
	buf    []uint64 // packed key<<32|value
	bufCap int      // records per run
	runs   []*os.File
	count  int64
	sorted bool
	closed bool

	spills  int
	peakMem int64
}

// New returns an empty sorter.
func New(cfg Config) *Sorter {
	cfg.setDefaults()
	bufCap := int(cfg.MemBytes / recordBytes)
	if bufCap < 1024 {
		bufCap = 1024 // floor: pathological budgets still make progress
	}
	return &Sorter{cfg: cfg, bufCap: bufCap}
}

// pack encodes a record so uint64 ordering equals (key, value) ordering.
func pack(key, val uint32) uint64 { return uint64(key)<<32 | uint64(val) }

func unpack(r uint64) (key, val uint32) { return uint32(r >> 32), uint32(r) }

// Add appends one record, spilling a sorted run when the buffer is full.
func (s *Sorter) Add(key, val uint32) error {
	if s.sorted {
		return fmt.Errorf("extsort: Add after Sort")
	}
	if s.buf == nil {
		// Allocate the full budgeted capacity once: append-style growth
		// would transiently hold old+new buffers (1.5× the budget), while
		// a fixed-cap buffer commits physical pages only as records
		// arrive and never exceeds the budget.
		s.buf = make([]uint64, 0, s.bufCap)
	}
	s.buf = append(s.buf, pack(key, val))
	s.count++
	s.observeMem()
	if len(s.buf) >= s.bufCap {
		return s.spill()
	}
	return nil
}

// Len returns how many records were added.
func (s *Sorter) Len() int64 { return s.count }

// Spills returns how many sorted runs were written to disk.
func (s *Sorter) Spills() int { return s.spills }

// PeakMemBytes returns the high-water in-memory footprint of the
// sorter: the record buffer plus, during merges, the per-run read
// buffers.
func (s *Sorter) PeakMemBytes() int64 { return s.peakMem }

func (s *Sorter) observeMem() {
	m := int64(cap(s.buf)) * recordBytes
	if m > s.peakMem {
		s.peakMem = m
	}
}

func (s *Sorter) observeMergeMem(fanIn int) {
	m := int64(fanIn)*int64(s.cfg.ReadBufBytes+recordBytes) + int64(cap(s.buf))*recordBytes
	if m > s.peakMem {
		s.peakMem = m
	}
}

// spill sorts the buffer and writes it as one run file.
func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	slices.Sort(s.buf)
	f, err := os.CreateTemp(s.cfg.TmpDir, "fg-extsort-*.run")
	if err != nil {
		return fmt.Errorf("extsort: creating run: %w", err)
	}
	// Unlink immediately: the OS reclaims the space when the fd closes,
	// even if the process dies mid-build.
	os.Remove(f.Name())
	if err := writeRun(f, s.buf); err != nil {
		f.Close()
		return err
	}
	s.runs = append(s.runs, f)
	s.spills++
	s.buf = s.buf[:0]
	return nil
}

// writeRun writes packed records through a buffered writer.
func writeRun(w io.Writer, recs []uint64) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var scratch [recordBytes]byte
	for _, r := range recs {
		binary.LittleEndian.PutUint64(scratch[:], r)
		if _, err := bw.Write(scratch[:]); err != nil {
			return fmt.Errorf("extsort: writing run: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("extsort: flushing run: %w", err)
	}
	return nil
}

// Sort finalizes the input. If everything fit in memory the buffer is
// sorted in place; otherwise the remaining buffer spills and, when the
// run count exceeds MaxFanIn, intermediate merge passes reduce it.
func (s *Sorter) Sort() error {
	if s.sorted {
		return nil
	}
	if len(s.runs) == 0 {
		slices.Sort(s.buf)
		s.sorted = true
		return nil
	}
	if err := s.spill(); err != nil {
		return err
	}
	s.buf = nil // all records are on disk; release the buffer
	for len(s.runs) > s.cfg.MaxFanIn {
		if err := s.reduceRuns(); err != nil {
			return err
		}
	}
	s.sorted = true
	return nil
}

// reduceRuns merges the first MaxFanIn runs into one new run.
func (s *Sorter) reduceRuns() error {
	batch := s.runs[:s.cfg.MaxFanIn]
	merged, err := s.mergeIter(batch)
	if err != nil {
		return err
	}
	out, err := os.CreateTemp(s.cfg.TmpDir, "fg-extsort-*.run")
	if err != nil {
		return fmt.Errorf("extsort: creating merged run: %w", err)
	}
	os.Remove(out.Name())
	bw := bufio.NewWriterSize(out, 1<<20)
	var scratch [recordBytes]byte
	for {
		k, v, ok := merged.Next()
		if !ok {
			break
		}
		binary.LittleEndian.PutUint64(scratch[:], pack(k, v))
		if _, err := bw.Write(scratch[:]); err != nil {
			out.Close()
			return fmt.Errorf("extsort: writing merged run: %w", err)
		}
	}
	if err := merged.Err(); err != nil {
		out.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		out.Close()
		return fmt.Errorf("extsort: flushing merged run: %w", err)
	}
	for _, f := range batch {
		f.Close()
	}
	s.runs = append([]*os.File{out}, s.runs[s.cfg.MaxFanIn:]...)
	return nil
}

// Iter returns a fresh iterator over the sorted records. It may be
// called repeatedly; each call rewinds the runs and merges them again,
// which is how the image writer takes its degree pass and its record
// pass over one sort.
func (s *Sorter) Iter() (*Iterator, error) {
	if !s.sorted {
		return nil, fmt.Errorf("extsort: Iter before Sort")
	}
	if s.closed {
		return nil, fmt.Errorf("extsort: Iter after Close")
	}
	if len(s.runs) == 0 {
		return &Iterator{mem: s.buf}, nil
	}
	return s.mergeIter(s.runs)
}

// mergeIter builds a k-way merge iterator over run files.
func (s *Sorter) mergeIter(runs []*os.File) (*Iterator, error) {
	s.observeMergeMem(len(runs))
	it := &Iterator{}
	for _, f := range runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("extsort: rewinding run: %w", err)
		}
		rr := &runReader{br: bufio.NewReaderSize(f, s.cfg.ReadBufBytes)}
		if rr.advance() {
			it.heap = append(it.heap, rr)
		} else if rr.err != nil {
			return nil, rr.err
		}
	}
	heap.Init(&it.heap)
	return it, nil
}

// runReader streams one sorted run.
type runReader struct {
	br  *bufio.Reader
	cur uint64
	err error
}

// advance loads the next record; false at EOF or error.
func (r *runReader) advance() bool {
	var scratch [recordBytes]byte
	if n, err := io.ReadFull(r.br, scratch[:]); err != nil {
		// A wrapped io.EOF at a record boundary is a clean end of run.
		// Anything else — including a torn record, where ReadFull's own
		// ErrUnexpectedEOF promotion misses wrapped EOFs because it
		// compares err == io.EOF — is a real read error.
		if n > 0 || !errors.Is(err, io.EOF) {
			r.err = fmt.Errorf("extsort: reading run: %w", err)
		}
		return false
	}
	r.cur = binary.LittleEndian.Uint64(scratch[:])
	return true
}

// runHeap is a min-heap of run readers keyed by their current record.
type runHeap []*runReader

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(i, j int) bool { return h[i].cur < h[j].cur }
func (h runHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h runHeap) peek() *runReader   { return h[0] }

// Iterator yields sorted records. Exactly one of mem/heap is active.
type Iterator struct {
	mem  []uint64 // in-memory path: remaining records
	heap runHeap  // disk path: k-way merge
	err  error
}

// Next returns the next record in (key, value) order.
func (it *Iterator) Next() (key, val uint32, ok bool) {
	if it.heap != nil {
		if it.err != nil || it.heap.Len() == 0 {
			return 0, 0, false
		}
		top := it.heap.peek()
		rec := top.cur
		if top.advance() {
			heap.Fix(&it.heap, 0)
		} else {
			if top.err != nil {
				it.err = top.err
				return 0, 0, false
			}
			heap.Pop(&it.heap)
		}
		k, v := unpack(rec)
		return k, v, true
	}
	if len(it.mem) == 0 {
		return 0, 0, false
	}
	k, v := unpack(it.mem[0])
	it.mem = it.mem[1:]
	return k, v, true
}

// Err reports the first read failure, if any.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator. Run files belong to the Sorter and stay
// open for further Iter calls; Close here only drops references.
func (it *Iterator) Close() error {
	it.mem = nil
	it.heap = nil
	return nil
}

// Close removes all run files and releases the buffer. The sorter is
// unusable afterwards.
func (s *Sorter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.buf = nil
	var first error
	for _, f := range s.runs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.runs = nil
	return first
}
