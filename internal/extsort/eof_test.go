package extsort

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"testing"
)

// wrappedEOFReader serves from a fixed buffer and reports end-of-stream
// as a *wrapped* io.EOF — the shape layered readers (fmt.Errorf("%w"),
// decompressors, instrumented stores) legally produce. A bare
// `err != io.EOF` comparison misclassifies this clean EOF as a read
// error; errors.Is does not. This is the twice-fixed bug class
// (PR 3: FileStore.ReadAt, PR 8: non-EOF short reads) that fg-lint's
// eofcompare analyzer now flags at compile time.
type wrappedEOFReader struct {
	r io.Reader
}

func (w *wrappedEOFReader) Read(p []byte) (int, error) {
	n, err := w.r.Read(p)
	if err == io.EOF {
		return n, fmt.Errorf("layered store: %w", io.EOF)
	}
	return n, err
}

// TestRunReaderWrappedEOF drives the merge path's record reader over a
// run whose reader wraps io.EOF: the stream must end cleanly (no
// error), with every record intact.
func TestRunReaderWrappedEOF(t *testing.T) {
	var run bytes.Buffer
	want := []uint64{pack(1, 2), pack(3, 4), pack(5, 6)}
	for _, rec := range want {
		var b [recordBytes]byte
		binary.LittleEndian.PutUint64(b[:], rec)
		run.Write(b[:])
	}

	rr := &runReader{br: bufio.NewReader(&wrappedEOFReader{r: &run})}
	var got []uint64
	for rr.advance() {
		got = append(got, rr.cur)
	}
	if rr.err != nil {
		t.Fatalf("wrapped EOF misread as run error: %v", rr.err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i, rec := range want {
		if got[i] != rec {
			t.Fatalf("record %d: got %#x, want %#x", i, got[i], rec)
		}
	}
}

// TestRunReaderTruncatedRun confirms the opposite contract: a run that
// ends mid-record is a real error, wrapped or not.
func TestRunReaderTruncatedRun(t *testing.T) {
	var run bytes.Buffer
	var b [recordBytes]byte
	binary.LittleEndian.PutUint64(b[:], pack(7, 8))
	run.Write(b[:])
	run.Write(b[:3]) // torn second record

	rr := &runReader{br: bufio.NewReader(&wrappedEOFReader{r: &run})}
	if !rr.advance() {
		t.Fatalf("first (intact) record should advance: err=%v", rr.err)
	}
	if rr.advance() {
		t.Fatal("torn record should not advance")
	}
	if rr.err == nil {
		t.Fatal("torn record must surface a read error, not a clean EOF")
	}
}

// TestSpillingSortWrappedEOFEndToEnd forces the external path (spilled
// runs, k-way merge) and replays Iter twice, proving the merge machinery
// the wrapped-EOF fix protects still yields the exact sorted stream.
func TestSpillingSortWrappedEOFEndToEnd(t *testing.T) {
	s := New(Config{MemBytes: 1, TmpDir: t.TempDir()}) // floor: 1024-record runs
	defer s.Close()
	const n = 5000
	for i := 0; i < n; i++ {
		k := uint32((i * 2654435761) % 977)
		if err := s.Add(k, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if s.Spills() == 0 {
		t.Fatal("test must exercise spilled runs")
	}
	for pass := 0; pass < 2; pass++ {
		it, err := s.Iter()
		if err != nil {
			t.Fatal(err)
		}
		var prev uint64
		count := 0
		for {
			k, v, ok := it.Next()
			if !ok {
				if err := it.Err(); err != nil {
					t.Fatal(err)
				}
				break
			}
			rec := pack(k, v)
			if count > 0 && rec < prev {
				t.Fatalf("pass %d: out of order at %d: %#x after %#x", pass, count, rec, prev)
			}
			prev = rec
			count++
		}
		if count != n {
			t.Fatalf("pass %d: merged %d records, want %d", pass, count, n)
		}
	}
}
