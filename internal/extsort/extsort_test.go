package extsort

import (
	"math/rand"
	"testing"
)

// drain collects every record from a fresh iterator.
func drain(t *testing.T, s *Sorter) []uint64 {
	t.Helper()
	it, err := s.Iter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []uint64
	for {
		k, v, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, pack(k, v))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func checkSorted(t *testing.T, recs []uint64, wantLen int) {
	t.Helper()
	if len(recs) != wantLen {
		t.Fatalf("got %d records, want %d", len(recs), wantLen)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1] > recs[i] {
			t.Fatalf("records out of order at %d: %x > %x", i, recs[i-1], recs[i])
		}
	}
}

func TestInMemorySort(t *testing.T) {
	s := New(Config{TmpDir: t.TempDir()})
	defer s.Close()
	r := rand.New(rand.NewSource(1))
	const n = 10000
	for i := 0; i < n; i++ {
		if err := s.Add(r.Uint32()%1000, r.Uint32()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if s.Spills() != 0 {
		t.Fatalf("spills = %d, want 0 (everything fit in the default budget)", s.Spills())
	}
	checkSorted(t, drain(t, s), n)
}

func TestSpillingSortTinyBudget(t *testing.T) {
	// 8KiB of buffer = 1024 records; 50000 records force dozens of runs.
	s := New(Config{MemBytes: 8 << 10, TmpDir: t.TempDir()})
	defer s.Close()
	r := rand.New(rand.NewSource(7))
	const n = 50000
	want := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		k, v := r.Uint32(), r.Uint32()
		want[pack(k, v)]++
		if err := s.Add(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if s.Spills() < 2 {
		t.Fatalf("spills = %d, want multi-run spill", s.Spills())
	}
	recs := drain(t, s)
	checkSorted(t, recs, n)
	got := make(map[uint64]int, n)
	for _, rec := range recs {
		got[rec]++
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("record %x: count %d, want %d", k, got[k], c)
		}
	}
}

func TestMultiPassMerge(t *testing.T) {
	// Fan-in 4 with many runs forces intermediate merge passes.
	s := New(Config{MemBytes: 8 << 10, MaxFanIn: 4, ReadBufBytes: 4 << 10, TmpDir: t.TempDir()})
	defer s.Close()
	r := rand.New(rand.NewSource(3))
	const n = 40000
	for i := 0; i < n; i++ {
		if err := s.Add(r.Uint32(), r.Uint32()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if s.Spills() <= 4 {
		t.Fatalf("spills = %d, want > MaxFanIn to exercise reduction", s.Spills())
	}
	checkSorted(t, drain(t, s), n)
}

func TestIterReplaysIdentically(t *testing.T) {
	for _, mem := range []int64{0 /* in-memory */, 8 << 10 /* spilled */} {
		s := New(Config{MemBytes: mem, TmpDir: t.TempDir()})
		r := rand.New(rand.NewSource(11))
		const n = 30000
		for i := 0; i < n; i++ {
			if err := s.Add(r.Uint32()%500, r.Uint32()%500); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Sort(); err != nil {
			t.Fatal(err)
		}
		first := drain(t, s)
		second := drain(t, s)
		if len(first) != len(second) {
			t.Fatalf("replay length %d != %d", len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("replay diverges at %d", i)
			}
		}
		s.Close()
	}
}

func TestKeyThenValueOrder(t *testing.T) {
	s := New(Config{MemBytes: 8 << 10, TmpDir: t.TempDir()})
	defer s.Close()
	// Same key, descending values: must come back ascending by value.
	for v := uint32(5000); v > 0; v-- {
		if err := s.Add(42, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	recs := drain(t, s)
	checkSorted(t, recs, 5000)
	if k, v := unpack(recs[0]); k != 42 || v != 1 {
		t.Fatalf("first record = (%d,%d), want (42,1)", k, v)
	}
}

func TestEmptySorter(t *testing.T) {
	s := New(Config{TmpDir: t.TempDir()})
	defer s.Close()
	if err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if recs := drain(t, s); len(recs) != 0 {
		t.Fatalf("empty sorter yielded %d records", len(recs))
	}
}

func TestAddAfterSortFails(t *testing.T) {
	s := New(Config{TmpDir: t.TempDir()})
	defer s.Close()
	if err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1, 2); err == nil {
		t.Fatal("expected error adding after Sort")
	}
}

func TestPeakMemoryStaysNearBudget(t *testing.T) {
	const budget = 64 << 10
	s := New(Config{MemBytes: budget, ReadBufBytes: 4 << 10, TmpDir: t.TempDir()})
	defer s.Close()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		if err := s.Add(r.Uint32(), r.Uint32()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	// Buffer is capped at the budget; merge adds fan-in read buffers.
	limit := int64(budget) + int64(s.Spills()+1)*(4<<10+recordBytes)
	if s.PeakMemBytes() > limit {
		t.Fatalf("peak memory %d exceeds budget-derived limit %d", s.PeakMemBytes(), limit)
	}
}
