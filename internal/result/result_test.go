package result

import (
	"errors"
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestTopKMatchesFullSortWithPagination(t *testing.T) {
	scores := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	rs := New("pagerank")
	rs.AddFloat64("score", scores)

	// Reference: full sort, value desc, vertex asc on ties.
	type ve struct {
		v uint32
		x float64
	}
	ref := make([]ve, len(scores))
	for i, x := range scores {
		ref[i] = ve{uint32(i), x}
	}
	sort.Slice(ref, func(i, j int) bool {
		if ref[i].x != ref[j].x {
			return ref[i].x > ref[j].x
		}
		return ref[i].v < ref[j].v
	})

	for _, tc := range []struct{ k, offset int }{
		{4, 0}, {3, 2}, {100, 0}, {2, 8}, {5, 9}, {1, 100},
	} {
		got, err := rs.TopK("score", tc.k, tc.offset)
		if err != nil {
			t.Fatalf("TopK(%d,%d): %v", tc.k, tc.offset, err)
		}
		lo := min(tc.offset, len(ref))
		hi := min(lo+tc.k, len(ref))
		want := ref[lo:hi]
		if len(got) != len(want) {
			t.Fatalf("TopK(%d,%d): %d entries, want %d", tc.k, tc.offset, len(got), len(want))
		}
		for i := range want {
			if got[i].Vertex != want[i].v || got[i].Value.(float64) != want[i].x {
				t.Fatalf("TopK(%d,%d)[%d] = %+v, want %+v", tc.k, tc.offset, i, got[i], want[i])
			}
		}
	}

	// Pagination partitions the full ranking: pages concatenate to TopK(n, 0).
	all, _ := rs.TopK("score", len(scores), 0)
	var paged []Entry
	for off := 0; off < len(scores); off += 3 {
		page, _ := rs.TopK("score", 3, off)
		paged = append(paged, page...)
	}
	if !reflect.DeepEqual(all, paged) {
		t.Fatalf("paged concat %v != full %v", paged, all)
	}

	if _, err := rs.TopK("score", 0, 0); !errors.Is(err, ErrBadRange) {
		t.Fatalf("k=0: err = %v, want ErrBadRange", err)
	}
	if _, err := rs.TopK("score", 1, -1); !errors.Is(err, ErrBadRange) {
		t.Fatalf("offset=-1: err = %v, want ErrBadRange", err)
	}
	// k and offset are attacker-controlled over HTTP: extreme values must
	// clamp to the vector, not overflow k+offset into a makeslice panic.
	if got, err := rs.TopK("score", math.MaxInt, 1); err != nil || len(got) != len(scores)-1 {
		t.Fatalf("huge k: %d entries, err %v", len(got), err)
	}
	if got, err := rs.TopK("score", math.MaxInt, math.MaxInt); err != nil || len(got) != 0 {
		t.Fatalf("huge k+offset: %d entries, err %v", len(got), err)
	}
}

func TestTopKExactUint64Ordering(t *testing.T) {
	// Values adjacent above 2^53 collide in float64; exact typed
	// comparison must still order them.
	big := uint64(1) << 60
	rs := New("sssp")
	rs.AddUint64("distance", []uint64{big, big + 1, big + 2, 7})
	top, err := rs.TopK("distance", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{2, big + 2}, {1, big + 1}, {0, big}}
	if !reflect.DeepEqual(top, want) {
		t.Fatalf("top = %v, want %v", top, want)
	}
}

func TestLookupAndVectorResolution(t *testing.T) {
	rs := New("bfs")
	rs.AddInt32("level", []int32{0, 1, -1, 2})

	e, err := rs.Lookup("level", 3)
	if err != nil || e.Vertex != 3 || e.Value.(int32) != 2 {
		t.Fatalf("lookup = %+v, %v", e, err)
	}
	// Empty vector name resolves to the default (first) vector.
	if e, err = rs.Lookup("", 2); err != nil || e.Value.(int32) != -1 {
		t.Fatalf("default-vector lookup = %+v, %v", e, err)
	}
	if _, err = rs.Lookup("level", 4); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("out-of-range: %v, want ErrVertexRange", err)
	}
	if _, err = rs.Lookup("level", -1); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("negative: %v, want ErrVertexRange", err)
	}
	if _, err = rs.Lookup("nope", 0); !errors.Is(err, ErrUnknownVector) {
		t.Fatalf("unknown vector: %v, want ErrUnknownVector", err)
	}

	scalarOnly := New("tc")
	scalarOnly.AddScalar("triangles", int64(7))
	if _, err := scalarOnly.Lookup("", 0); !errors.Is(err, ErrNoVectors) {
		t.Fatalf("scalar-only lookup: %v, want ErrNoVectors", err)
	}
}

func TestCountAndHistogram(t *testing.T) {
	rs := New("bfs")
	v := rs.AddInt32("level", []int32{-1, 0, 1, 1, 2, -1})
	if n := v.Count(func(x float64) bool { return x >= 0 }); n != 4 {
		t.Fatalf("count reached = %d, want 4", n)
	}
	h, err := rs.Histogram("level", 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Min != -1 || h.Max != 2 {
		t.Fatalf("bounds = [%v, %v], want [-1, 2]", h.Min, h.Max)
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != 6 {
		t.Fatalf("histogram counts sum to %d, want 6", total)
	}
	// Constant vector: everything in bin 0.
	c := New("x")
	c.AddFloat64("v", []float64{5, 5, 5})
	if h, _ := c.Histogram("v", 3); h.Counts[0] != 3 {
		t.Fatalf("constant histogram = %v", h.Counts)
	}
	if _, err := rs.Histogram("level", 0); !errors.Is(err, ErrBadRange) {
		t.Fatalf("bins=0: %v, want ErrBadRange", err)
	}
	// The bin count is attacker-controlled over HTTP: the allocation must
	// be bounded.
	if _, err := rs.Histogram("level", MaxHistogramBins+1); !errors.Is(err, ErrBadRange) {
		t.Fatalf("bins over cap: %v, want ErrBadRange", err)
	}
}

func TestChecksumDeterministicAndSensitive(t *testing.T) {
	build := func(x float64) *ResultSet {
		rs := New("pagerank")
		rs.AddFloat64("score", []float64{0.1, x, 0.3})
		rs.AddScalar("iters", 30)
		return rs
	}
	a, b := build(0.2), build(0.2)
	if a.Checksum() != b.Checksum() {
		t.Fatal("identical result sets hash differently")
	}
	if a.Checksum() == build(0.20000001).Checksum() {
		t.Fatal("different data, same checksum")
	}
	// Bit-sensitivity: -0.0 vs +0.0 differ in representation.
	if build(math.Copysign(0, -1)).Checksum() == build(0).Checksum() {
		t.Fatal("-0.0 and +0.0 must hash differently (bit-identity contract)")
	}
}

func TestSummaryShape(t *testing.T) {
	rs := New("wcc")
	rs.AddUint32("component", []uint32{0, 0, 2, 2, 2})
	rs.AddScalar("components", 2)
	s := rs.Summary()
	if s["algorithm"] != "wcc" || s["components"] != 2 {
		t.Fatalf("summary = %v", s)
	}
	if _, ok := s["checksum"].(string); !ok {
		t.Fatalf("summary missing checksum: %v", s)
	}
	vecs := s["vectors"].([]map[string]any)
	if len(vecs) != 1 || vecs[0]["name"] != "component" || vecs[0]["len"] != 5 {
		t.Fatalf("vector meta = %v", vecs)
	}
	top := s["top"].([]Entry)
	if len(top) != 5 || top[0].Vertex != 2 || top[0].Value.(uint32) != 2 {
		t.Fatalf("top = %v", top)
	}
}

func TestFromFallsBackForNonProducers(t *testing.T) {
	rs := From(struct{}{}, "custom")
	if rs.Algorithm() != "custom" || len(rs.Vectors()) != 0 {
		t.Fatalf("fallback = %v", rs)
	}
}

func TestMemoryBytes(t *testing.T) {
	rs := New("bfs")
	rs.AddInt32("level", make([]int32, 100))
	rs.AddUint64("aux", make([]uint64, 10))
	if got := rs.MemoryBytes(); got != 100*4+10*8+256 {
		t.Fatalf("MemoryBytes = %d", got)
	}
}

// TestSentinelRanksLastAndSkipsReductions pins the sentinel contract:
// sentinel entries (BFS -1, SSSP Unreachable) rank below every real
// value in TopK, never win Max, are excluded from Histogram bins, and
// still appear raw in Lookup and the checksum.
func TestSentinelRanksLastAndSkipsReductions(t *testing.T) {
	unreachable := ^uint64(0)
	rs := New("sssp")
	rs.AddUint64("distance", []uint64{0, unreachable, 7, 3, unreachable}).WithSentinel(unreachable)

	top, err := rs.TopK("distance", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []uint32{2, 3, 0, 1, 4} // reached desc, then sentinels by vertex
	for i, w := range wantOrder {
		if top[i].Vertex != w {
			t.Fatalf("top[%d] = %+v, want vertex %d (full: %v)", i, top[i], w, top)
		}
	}
	v, _ := rs.Vector("distance")
	if e, ok := v.Max(); !ok || e.Vertex != 2 || e.Value.(uint64) != 7 {
		t.Fatalf("Max = %+v, %v; want vertex 2", e, ok)
	}
	h, err := rs.Histogram("distance", 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sentinels != 2 || h.Min != 0 || h.Max != 7 || h.Counts[0]+h.Counts[1] != 3 {
		t.Fatalf("histogram = %+v", h)
	}
	// Lookup still returns the raw sentinel value.
	if e, _ := rs.Lookup("distance", 1); e.Value.(uint64) != unreachable {
		t.Fatalf("lookup sentinel = %v", e.Value)
	}
	// All-sentinel vector: no max.
	all := New("x")
	av := all.AddInt32("level", []int32{-1, -1}).WithSentinel(int32(-1))
	if _, ok := av.Max(); ok {
		t.Fatal("all-sentinel vector reported a max")
	}
	// Kind-mismatched sentinel panics at construction, not at query time.
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched sentinel type did not panic")
		}
	}()
	all.AddInt32("bad", []int32{0}).WithSentinel("nope")
}

// TestTopKSortFallbackMatchesSelection pins that the large-window sort
// path and the small-window selection path produce identical rankings
// (including sentinel placement and tie-breaks).
func TestTopKSortFallbackMatchesSelection(t *testing.T) {
	n := 4 * selectionWindow
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32((i * 7919) % 97) // many ties
		if i%5 == 0 {
			xs[i] = -1
		}
	}
	rs := New("bfs")
	rs.AddInt32("level", xs).WithSentinel(int32(-1))

	small, err := rs.TopK("level", selectionWindow/2, 3) // selection path
	if err != nil {
		t.Fatal(err)
	}
	big, err := rs.TopK("level", n, 0) // sort path (n > selectionWindow)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) != n {
		t.Fatalf("full ranking has %d entries, want %d", len(big), n)
	}
	for i, e := range small {
		if big[3+i] != e {
			t.Fatalf("rank %d: selection %+v != sort %+v", 3+i, e, big[3+i])
		}
	}
	// Sentinels occupy the tail of the full ranking.
	if big[n-1].Value.(int32) != -1 || big[0].Value.(int32) == -1 {
		t.Fatalf("sentinel placement wrong: head %v tail %v", big[0], big[n-1])
	}
}

// TestSummaryReservedKeysSurviveScalarCollision pins that a scalar
// named like a reserved summary key cannot clobber the determinism
// certificate; the verbatim scalar survives under "scalars".
func TestSummaryReservedKeysSurviveScalarCollision(t *testing.T) {
	rs := New("custom")
	rs.AddFloat64("score", []float64{1, 2})
	rs.AddScalar("checksum", "attacker-chosen")
	rs.AddScalar("top", "not-a-ranking")
	s := rs.Summary()
	if s["checksum"] != rs.Checksum() {
		t.Fatalf("summary checksum %v clobbered by scalar", s["checksum"])
	}
	if _, ok := s["top"].([]Entry); !ok {
		t.Fatalf("summary top clobbered: %v", s["top"])
	}
	sc := s["scalars"].(map[string]any)
	if sc["checksum"] != "attacker-chosen" || sc["top"] != "not-a-ranking" {
		t.Fatalf("verbatim scalars lost: %v", sc)
	}
}

// TestHistogramNonFiniteValues pins that NaN/Inf in a custom float
// vector cannot panic the binning (NaN bin index would be minInt);
// they are excluded and counted with the sentinels.
func TestHistogramNonFiniteValues(t *testing.T) {
	rs := New("custom")
	rs.AddFloat64("ratio", []float64{1, math.NaN(), 2, math.Inf(1), 3, math.Inf(-1)})
	h, err := rs.Histogram("ratio", 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sentinels != 3 || h.Min != 1 || h.Max != 3 {
		t.Fatalf("histogram = %+v, want 3 excluded, bounds [1,3]", h)
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("binned %d values, want 3", total)
	}
	// All-non-finite: no bins filled, no panic.
	alln := New("custom")
	alln.AddFloat64("x", []float64{math.NaN(), math.Inf(1)})
	if h, err := alln.Histogram("x", 2); err != nil || h.Sentinels != 2 || h.Counts[0]+h.Counts[1] != 0 {
		t.Fatalf("all-non-finite histogram = %+v, %v", h, err)
	}
}
