// Package result defines the uniform, typed result contract every
// FlashGraph algorithm returns: a ResultSet of named per-vertex
// property vectors (level, score, component, ...) plus named scalars
// (reached, triangles, ...), with point lookup, deterministic top-K
// with pagination, count/histogram reductions, and an FNV-64a checksum
// that certifies bit-identical results across runs.
//
// The serve layer exposes these operations over HTTP; the bespoke
// per-algorithm summarizer closures they replace lived in
// internal/serve. A ResultSet is immutable once built (algorithms build
// one in their Result method after the run completes), so readers may
// use it concurrently without locking.
package result

import (
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Kind names a vector's element type.
type Kind string

// Vector element kinds.
const (
	Int32   Kind = "int32"
	Uint32  Kind = "uint32"
	Uint64  Kind = "uint64"
	Float64 Kind = "float64"
)

// Reduction errors. The serve HTTP layer maps these onto status codes.
var (
	// ErrUnknownVector reports a vector name the ResultSet does not have.
	ErrUnknownVector = errors.New("result: unknown vector")
	// ErrNoVectors reports a default-vector operation on a scalar-only
	// ResultSet (e.g. triangle counting).
	ErrNoVectors = errors.New("result: result set has no vectors")
	// ErrVertexRange reports a point lookup outside [0, Len).
	ErrVertexRange = errors.New("result: vertex out of range")
	// ErrBadRange reports a non-positive k, negative offset, or
	// non-positive histogram bin count.
	ErrBadRange = errors.New("result: bad range parameters")
)

// Entry is one (vertex, value) pair, the unit of lookups and top-K.
type Entry struct {
	Vertex uint32 `json:"vertex"`
	Value  any    `json:"value"`
}

// Vector is one named per-vertex property: a typed column of length
// NumVertices. Exactly one of the typed slices is set.
type Vector struct {
	name     string
	kind     Kind
	i32      []int32
	u32      []uint32
	u64      []uint64
	f64      []float64
	sentinel any // optional not-a-value marker (see WithSentinel)
}

// WithSentinel marks one value of the column as "no result for this
// vertex" (BFS's -1 level, SSSP's Unreachable distance). Sentinel
// entries rank below every real value in TopK/Max and are excluded from
// Histogram binning (counted in Histogram.Sentinels); Lookup and
// Checksum still see the raw value — the bit-identity contract hashes
// the column exactly as the algorithm produced it. The sentinel's type
// must match the column's kind.
func (v *Vector) WithSentinel(x any) *Vector {
	ok := false
	switch v.kind {
	case Int32:
		_, ok = x.(int32)
	case Uint32:
		_, ok = x.(uint32)
	case Uint64:
		_, ok = x.(uint64)
	case Float64:
		_, ok = x.(float64)
	}
	if !ok {
		panic(fmt.Sprintf("result: sentinel %T does not match vector kind %s", x, v.kind))
	}
	v.sentinel = x
	return v
}

// Name returns the vector's name.
func (v *Vector) Name() string { return v.name }

// Kind returns the element type.
func (v *Vector) Kind() Kind { return v.kind }

// Len returns the element count.
func (v *Vector) Len() int {
	switch v.kind {
	case Int32:
		return len(v.i32)
	case Uint32:
		return len(v.u32)
	case Uint64:
		return len(v.u64)
	default:
		return len(v.f64)
	}
}

// Value returns element i with its exact type.
func (v *Vector) Value(i int) any {
	switch v.kind {
	case Int32:
		return v.i32[i]
	case Uint32:
		return v.u32[i]
	case Uint64:
		return v.u64[i]
	default:
		return v.f64[i]
	}
}

// Float returns element i as float64 — a lossy numeric view (uint64
// above 2^53 rounds) used by Count and Histogram predicates. Ordering
// operations (TopK, Max) compare exact typed values instead.
func (v *Vector) Float(i int) float64 {
	switch v.kind {
	case Int32:
		return float64(v.i32[i])
	case Uint32:
		return float64(v.u32[i])
	case Uint64:
		return float64(v.u64[i])
	default:
		return v.f64[i]
	}
}

// Bytes returns the column's data footprint.
func (v *Vector) Bytes() int64 {
	switch v.kind {
	case Int32, Uint32:
		return int64(v.Len()) * 4
	default:
		return int64(v.Len()) * 8
	}
}

// Checksum returns the FNV-64a hash of the column's little-endian
// encoding. Equal checksums across runs certify bit-identical vectors.
func (v *Vector) Checksum() string {
	h := fnv.New64a()
	var b [8]byte
	switch v.kind {
	case Int32:
		for _, x := range v.i32 {
			binary.LittleEndian.PutUint32(b[:4], uint32(x))
			h.Write(b[:4])
		}
	case Uint32:
		for _, x := range v.u32 {
			binary.LittleEndian.PutUint32(b[:4], x)
			h.Write(b[:4])
		}
	case Uint64:
		for _, x := range v.u64 {
			binary.LittleEndian.PutUint64(b[:8], x)
			h.Write(b[:8])
		}
	default:
		for _, x := range v.f64 {
			binary.LittleEndian.PutUint64(b[:8], math.Float64bits(x))
			h.Write(b[:8])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TopK returns entries ranked by value descending (ties broken by
// smaller vertex ID — the deterministic total order the pagination
// contract needs), skipping the first offset ranks and returning at
// most k. It runs one bounded selection pass: O(V · (k+offset)) worst
// case, no O(V) copy or full sort on the serving path.
func (v *Vector) TopK(k, offset int) ([]Entry, error) {
	if k <= 0 || offset < 0 {
		return nil, ErrBadRange
	}
	// Clamp to the vector before k+offset is ever formed: both values
	// are caller-controlled (HTTP query parameters) and must not
	// overflow or drive the selection buffer past O(Len).
	if offset >= v.Len() {
		return []Entry{}, nil
	}
	if k > v.Len()-offset {
		k = v.Len() - offset
	}
	switch v.kind {
	case Int32:
		return topK(v.i32, k, offset, typedSentinel[int32](v.sentinel)), nil
	case Uint32:
		return topK(v.u32, k, offset, typedSentinel[uint32](v.sentinel)), nil
	case Uint64:
		return topK(v.u64, k, offset, typedSentinel[uint64](v.sentinel)), nil
	default:
		return topK(v.f64, k, offset, typedSentinel[float64](v.sentinel)), nil
	}
}

// typedSentinel unwraps a Vector's sentinel for the typed kernels (nil
// when unset).
func typedSentinel[T cmp.Ordered](sentinel any) *T {
	if s, ok := sentinel.(T); ok {
		return &s
	}
	return nil
}

// Max returns the maximum non-sentinel entry (smallest vertex ID on
// ties); ok is false for an empty or all-sentinel vector.
func (v *Vector) Max() (Entry, bool) {
	top, err := v.TopK(1, 0)
	if err != nil || len(top) == 0 || v.isSentinel(int(top[0].Vertex)) {
		return Entry{}, false
	}
	return top[0], true
}

// Count returns how many elements satisfy pred (over the Float view).
func (v *Vector) Count(pred func(float64) bool) int {
	n := 0
	for i, l := 0, v.Len(); i < l; i++ {
		if pred(v.Float(i)) {
			n++
		}
	}
	return n
}

// Histogram is a fixed-width binning of a vector's Float view.
type Histogram struct {
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Counts []int64 `json:"counts"`
	// Sentinels counts entries carrying the vector's sentinel value
	// (excluded from the bins and bounds).
	Sentinels int64 `json:"sentinels,omitempty"`
}

// MaxHistogramBins bounds Histogram's bin count: the count is
// caller-controlled over HTTP, and the Counts allocation must not be an
// unauthenticated memory-exhaustion lever.
const MaxHistogramBins = 10_000

// Histogram bins the vector's values into bins equal-width buckets
// spanning [min, max] (1 <= bins <= MaxHistogramBins). A constant
// vector lands entirely in bin 0.
func (v *Vector) Histogram(bins int) (Histogram, error) {
	if bins <= 0 || bins > MaxHistogramBins {
		return Histogram{}, ErrBadRange
	}
	h := Histogram{Counts: make([]int64, bins)}
	n := v.Len()
	first := true
	// Non-finite values (NaN/±Inf from custom float vectors) are
	// excluded like sentinels: NaN arithmetic would otherwise turn the
	// bin index into minInt and panic on a caller-reachable path.
	skip := func(i int) bool {
		if v.isSentinel(i) {
			return true
		}
		x := v.Float(i)
		return math.IsNaN(x) || math.IsInf(x, 0)
	}
	for i := 0; i < n; i++ {
		if skip(i) {
			h.Sentinels++
			continue
		}
		x := v.Float(i)
		if first {
			h.Min, h.Max, first = x, x, false
			continue
		}
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	if first {
		return h, nil // empty or all values excluded: no bins to fill
	}
	width := (h.Max - h.Min) / float64(bins)
	for i := 0; i < n; i++ {
		if skip(i) {
			continue
		}
		b := 0
		if width > 0 {
			b = int((v.Float(i) - h.Min) / width)
			if b >= bins {
				b = bins - 1 // the maximum lands in the last bin
			}
		}
		h.Counts[b]++
	}
	return h, nil
}

// isSentinel reports whether element i carries the sentinel value.
func (v *Vector) isSentinel(i int) bool {
	if v.sentinel == nil {
		return false
	}
	switch v.kind {
	case Int32:
		return v.i32[i] == v.sentinel.(int32)
	case Uint32:
		return v.u32[i] == v.sentinel.(uint32)
	case Uint64:
		return v.u64[i] == v.sentinel.(uint64)
	default:
		return v.f64[i] == v.sentinel.(float64)
	}
}

// selectionWindow bounds the insertion-based selection kernel: past
// this window size its O((k+offset)·V) shifting costs more than a full
// O(V log V) sort, and — since k and offset arrive over HTTP — would be
// an unauthenticated CPU-exhaustion lever.
const selectionWindow = 256

// topK is the shared ranking kernel: value descending, sentinel values
// last, ties broken by ascending vertex ID (the deterministic total
// order the pagination contract needs). Small windows use one bounded
// selection pass; large ones fall back to a full sort. The caller has
// clamped k+offset to len(xs).
func topK[T cmp.Ordered](xs []T, k, offset int, sentinel *T) []Entry {
	n := k + offset
	type ve struct {
		v uint32
		x T
	}
	better := func(a, b ve) bool { // strict ranking order
		if sentinel != nil && (a.x == *sentinel) != (b.x == *sentinel) {
			return b.x == *sentinel // any real value outranks the sentinel
		}
		if a.x != b.x {
			return a.x > b.x
		}
		return a.v < b.v
	}
	var top []ve
	if n > selectionWindow {
		top = make([]ve, len(xs))
		for i, x := range xs {
			top[i] = ve{uint32(i), x}
		}
		sort.Slice(top, func(i, j int) bool { return better(top[i], top[j]) })
		top = top[:n]
	} else {
		top = make([]ve, 0, min(n, len(xs)))
		for i, x := range xs {
			e := ve{uint32(i), x}
			if len(top) == n && !better(e, top[n-1]) {
				continue
			}
			at := sort.Search(len(top), func(j int) bool { return better(e, top[j]) })
			if len(top) < n {
				top = append(top, ve{})
			}
			copy(top[at+1:], top[at:])
			top[at] = e
		}
	}
	if offset >= len(top) {
		return []Entry{}
	}
	top = top[offset:]
	out := make([]Entry, len(top))
	for i, t := range top {
		out[i] = Entry{Vertex: t.v, Value: t.x}
	}
	return out
}

// ResultSet is one algorithm run's complete typed output: ordered named
// vectors plus ordered named scalars. Build it once after the run (the
// algorithm's Result method), then treat it as immutable.
type ResultSet struct {
	algorithm   string
	vectors     []*Vector
	byName      map[string]*Vector
	scalarOrder []string
	scalars     map[string]any
}

// New returns an empty ResultSet for the named algorithm.
func New(algorithm string) *ResultSet {
	return &ResultSet{
		algorithm: algorithm,
		byName:    map[string]*Vector{},
		scalars:   map[string]any{},
	}
}

// Algorithm returns the producing algorithm's name.
func (rs *ResultSet) Algorithm() string { return rs.algorithm }

func (rs *ResultSet) add(v *Vector) *Vector {
	if _, dup := rs.byName[v.name]; dup {
		panic(fmt.Sprintf("result: duplicate vector %q", v.name))
	}
	rs.vectors = append(rs.vectors, v)
	rs.byName[v.name] = v
	return v
}

// AddInt32 adds an int32 vector. The slice is referenced, not copied —
// the algorithm hands over ownership of its state array.
func (rs *ResultSet) AddInt32(name string, xs []int32) *Vector {
	return rs.add(&Vector{name: name, kind: Int32, i32: xs})
}

// AddUint32 adds a uint32 vector (shared-reference, like AddInt32).
func (rs *ResultSet) AddUint32(name string, xs []uint32) *Vector {
	return rs.add(&Vector{name: name, kind: Uint32, u32: xs})
}

// AddUint64 adds a uint64 vector (shared-reference, like AddInt32).
func (rs *ResultSet) AddUint64(name string, xs []uint64) *Vector {
	return rs.add(&Vector{name: name, kind: Uint64, u64: xs})
}

// AddFloat64 adds a float64 vector (shared-reference, like AddInt32).
func (rs *ResultSet) AddFloat64(name string, xs []float64) *Vector {
	return rs.add(&Vector{name: name, kind: Float64, f64: xs})
}

// AddBool adds a bool vector, stored as uint32 0/1 (this one copies).
func (rs *ResultSet) AddBool(name string, xs []bool) *Vector {
	u := make([]uint32, len(xs))
	for i, b := range xs {
		if b {
			u[i] = 1
		}
	}
	return rs.AddUint32(name, u)
}

// AddScalar records a named scalar (count, argmax, ...). Scalars keep
// insertion order in Summary.
func (rs *ResultSet) AddScalar(name string, v any) {
	if _, dup := rs.scalars[name]; !dup {
		rs.scalarOrder = append(rs.scalarOrder, name)
	}
	rs.scalars[name] = v
}

// Vectors returns the vectors in insertion order (the first is the
// default vector).
func (rs *ResultSet) Vectors() []*Vector { return rs.vectors }

// Scalar returns a named scalar.
func (rs *ResultSet) Scalar(name string) (any, bool) {
	v, ok := rs.scalars[name]
	return v, ok
}

// Vector resolves a vector by name; the empty name selects the default
// (first) vector.
func (rs *ResultSet) Vector(name string) (*Vector, error) {
	if name == "" {
		if len(rs.vectors) == 0 {
			return nil, ErrNoVectors
		}
		return rs.vectors[0], nil
	}
	v, ok := rs.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownVector, name, rs.vectorNames())
	}
	return v, nil
}

func (rs *ResultSet) vectorNames() []string {
	names := make([]string, len(rs.vectors))
	for i, v := range rs.vectors {
		names[i] = v.name
	}
	return names
}

// Lookup is the point query: the named vector's value at vertex.
func (rs *ResultSet) Lookup(vector string, vertex int) (Entry, error) {
	v, err := rs.Vector(vector)
	if err != nil {
		return Entry{}, err
	}
	if vertex < 0 || vertex >= v.Len() {
		return Entry{}, fmt.Errorf("%w: vertex %d outside [0, %d)", ErrVertexRange, vertex, v.Len())
	}
	return Entry{Vertex: uint32(vertex), Value: v.Value(vertex)}, nil
}

// TopK ranks the named vector descending and returns ranks
// [offset, offset+k).
func (rs *ResultSet) TopK(vector string, k, offset int) ([]Entry, error) {
	v, err := rs.Vector(vector)
	if err != nil {
		return nil, err
	}
	return v.TopK(k, offset)
}

// Histogram bins the named vector into bins buckets.
func (rs *ResultSet) Histogram(vector string, bins int) (Histogram, error) {
	v, err := rs.Vector(vector)
	if err != nil {
		return Histogram{}, err
	}
	return v.Histogram(bins)
}

// MemoryBytes estimates the retained footprint — what the serve layer
// charges against its result byte budget.
func (rs *ResultSet) MemoryBytes() int64 {
	var n int64
	for _, v := range rs.vectors {
		n += v.Bytes()
	}
	return n + 256 // metadata slack so scalar-only results are not free
}

// Checksum hashes the whole result set — algorithm name, every vector
// (name, kind, little-endian data) in order, every scalar (name,
// canonical formatting) in order — into one deterministic certificate.
func (rs *ResultSet) Checksum() string {
	return rs.checksumFrom(rs.vectorChecksums())
}

// vectorChecksums hashes each vector's data once; Summary and Checksum
// both build on it so no column is ever hashed twice.
func (rs *ResultSet) vectorChecksums() []string {
	sums := make([]string, len(rs.vectors))
	for i, v := range rs.vectors {
		sums[i] = v.Checksum()
	}
	return sums
}

func (rs *ResultSet) checksumFrom(vecSums []string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "alg=%s;", rs.algorithm)
	for i, v := range rs.vectors {
		fmt.Fprintf(h, "vec=%s:%s:%s;", v.name, v.kind, vecSums[i])
	}
	for _, name := range rs.scalarOrder {
		fmt.Fprintf(h, "scalar=%s:%v;", name, rs.scalars[name])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Summary returns the JSON-friendly digest the serve layer publishes
// for every finished query: scalars at the top level, per-vector
// metadata (name, kind, len, checksum, max), the default vector's
// top-5, and the combined checksum. It is uniform across algorithms —
// no per-algorithm summarizer code.
func (rs *ResultSet) Summary() map[string]any {
	vecSums := rs.vectorChecksums() // hash each O(V) column exactly once
	out := map[string]any{}
	// Scalars go in first so the reserved keys below always win a name
	// collision; the verbatim scalar set stays available under "scalars"
	// regardless.
	scalars := map[string]any{}
	for _, name := range rs.scalarOrder {
		scalars[name] = rs.scalars[name]
		out[name] = rs.scalars[name]
	}
	out["algorithm"] = rs.algorithm
	out["checksum"] = rs.checksumFrom(vecSums)
	if len(rs.scalarOrder) > 0 {
		out["scalars"] = scalars
	}
	if len(rs.vectors) > 0 {
		var top []Entry
		metas := make([]map[string]any, len(rs.vectors))
		for i, v := range rs.vectors {
			m := map[string]any{
				"name":     v.name,
				"kind":     string(v.kind),
				"len":      v.Len(),
				"checksum": vecSums[i],
			}
			if v.sentinel != nil {
				m["sentinel"] = v.sentinel
			}
			if i == 0 {
				// One selection pass yields the default vector's top-5
				// AND its max — no second O(V) scan.
				if t, err := v.TopK(5, 0); err == nil {
					top = t
				}
				if len(top) > 0 && !v.isSentinel(int(top[0].Vertex)) {
					m["max"] = top[0]
				}
			} else if e, ok := v.Max(); ok {
				m["max"] = e
			}
			metas[i] = m
		}
		out["vectors"] = metas
		if top != nil {
			out["top"] = top
		}
	}
	return out
}

// Producer is the optional Algorithm extension this package defines the
// contract for: after a run completes, Result returns the typed result
// set. internal/core re-exports it as core.ResultProducer.
type Producer interface {
	Result() *ResultSet
}

// From extracts alg's ResultSet if it is a Producer, else an empty
// ResultSet named fallback (custom algorithms without typed results
// still get a uniform summary shell).
func From(alg any, fallback string) *ResultSet {
	if p, ok := alg.(Producer); ok {
		if rs := p.Result(); rs != nil {
			return rs
		}
	}
	return New(fallback)
}
