package flashgraph

// One testing.B benchmark per table and figure of the paper's
// evaluation (§5). Each benchmark iteration executes the complete
// experiment on the default-scale synthetic stand-ins with throttled
// simulated SSDs; `cmd/fg-bench` produces the same tables with
// human-readable output and adjustable scale. EXPERIMENTS.md records
// paper-vs-measured shapes.

import (
	"io"
	"testing"

	"flashgraph/internal/bench"
)

// benchCfg is the shared configuration: default dataset scale,
// throttled devices.
func benchCfg() bench.Config {
	return bench.Config{Threads: 8}
}

func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(benchCfg(), io.Discard)
	}
}

func BenchmarkFig8SemVsMem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := bench.Fig8(benchCfg(), io.Discard)
		// Surface the headline: mean SEM/mem relative performance.
		var sum float64
		for _, r := range rs {
			sum += r.Value
		}
		b.ReportMetric(sum/float64(len(rs)), "rel-perf")
	}
}

func BenchmarkFig9Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig9(benchCfg(), io.Discard)
	}
}

func BenchmarkFig10Engines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig10(benchCfg(), io.Discard)
	}
}

func BenchmarkFig11ExternalEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := bench.Fig11(benchCfg(), io.Discard)
		// Headline: FlashGraph speedup over the fastest external engine
		// on WCC.
		var fg, best float64
		for _, r := range rs {
			if r.App != "WCC" {
				continue
			}
			if r.Variant == "FlashGraph" {
				fg = r.Value
			} else if best == 0 || r.Value < best {
				best = r.Value
			}
		}
		if fg > 0 {
			b.ReportMetric(best/fg, "speedup-vs-external")
		}
	}
}

func BenchmarkTable2PageGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table2(benchCfg(), io.Discard)
	}
}

func BenchmarkFig12SequentialIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := bench.Fig12(benchCfg(), io.Discard)
		// Headline: merge-FG speedup over random execution order (BFS).
		for _, r := range rs {
			if r.App == "BFS" && r.Variant == "random" && r.Value > 0 {
				b.ReportMetric(1/r.Value, "fg-over-random")
			}
		}
	}
}

func BenchmarkFig13PageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := bench.Fig13(benchCfg(), io.Discard)
		// Headline: how far 1MB pages fall below 4KB pages on BFS.
		for _, r := range rs {
			if r.App == "BFS" && r.Variant == "1.0MB" {
				b.ReportMetric(r.Value, "bfs-1MB-rel")
			}
		}
	}
}

func BenchmarkFig14CacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig14(benchCfg(), io.Discard)
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Ablations(benchCfg(), io.Discard)
	}
}

// Micro-benchmarks of the public API hot paths (not paper figures, but
// useful for regression tracking).

func BenchmarkAPIBFSInMemory(b *testing.B) {
	g := NewGraph(1<<12, GenerateRMAT(12, 8, 1), Directed)
	eng, err := Open(g, Options{InMemory: true, Threads: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(NewBFS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPIBFSSemiExternal(b *testing.B) {
	g := NewGraph(1<<12, GenerateRMAT(12, 8, 1), Directed)
	eng, err := Open(g, Options{Threads: 8, CacheBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(NewBFS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPIPageRankSemiExternal(b *testing.B) {
	g := NewGraph(1<<12, GenerateRMAT(12, 8, 1), Directed)
	eng, err := Open(g, Options{Threads: 8, CacheBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(NewPageRank()); err != nil {
			b.Fatal(err)
		}
	}
}
