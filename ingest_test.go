package flashgraph

import (
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func fileChecksum(t *testing.T, path string) uint64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, f); err != nil {
		t.Fatal(err)
	}
	return h.Sum64()
}

// TestOutOfCoreIngestAndServe is the acceptance path of the streaming
// ingest pipeline: an RMAT graph is built through BuildGraphFile under
// a 64MiB builder budget, must be checksum-identical to the fully
// in-memory path, and must serve BFS and PageRank from a file-backed
// catalog without ever materializing edge data in RAM. The full run
// uses RMAT scale 20 (~1M vertices, ~16M edges); -short scales down.
func TestOutOfCoreIngestAndServe(t *testing.T) {
	scale, epv := 20, 16
	if testing.Short() {
		scale, epv = 14, 8
	}
	dir := t.TempDir()
	streamed := filepath.Join(dir, "streamed.fg")

	st, err := BuildGraphFile(streamed, GenerateRMATStream(scale, epv, 1), BuildOptions{
		NumVertices: 1 << scale,
		Directed:    true,
		MemBytes:    64 << 20,
		TmpDir:      dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakMemBytes > 64<<20 {
		t.Fatalf("builder peak memory %d exceeds the 64MiB budget", st.PeakMemBytes)
	}
	if !testing.Short() {
		// ~16M edges × 8B × 2 sorters cannot fit a 64MiB budget: the
		// build must have gone external.
		if st.Spills < 2 {
			t.Fatalf("spills = %d; scale-%d build was expected to sort externally", st.Spills, scale)
		}
		if st.InputEdges != int64(epv)<<scale {
			t.Fatalf("ingested %d edges, want %d", st.InputEdges, int64(epv)<<scale)
		}
	}

	// The legacy in-memory path must produce the identical image file.
	inMem := filepath.Join(dir, "inmem.fg")
	g := NewGraph(1<<scale, GenerateRMAT(scale, epv, 1), Directed)
	if err := g.SaveFile(inMem); err != nil {
		t.Fatal(err)
	}
	if a, b := fileChecksum(t, streamed), fileChecksum(t, inMem); a != b {
		t.Fatalf("streaming image checksum %x != in-memory image checksum %x", a, b)
	}

	// Serve the streamed file from a file-backed catalog.
	cat := NewCatalog(Options{CacheBytes: 16 << 20})
	defer cat.Close()
	eng, err := cat.AddFile("rmat", streamed)
	if err != nil {
		t.Fatal(err)
	}
	img := eng.Shared().Image()
	if !img.FileBacked() {
		t.Fatal("catalog engine is not serving a file-backed image")
	}
	if img.OutData != nil || img.InData != nil {
		t.Fatal("file-backed serving materialized edge data in RAM")
	}

	// Reference engine over the decoded in-memory graph, same substrate
	// parameters, for result checksums.
	ref, err := Open(g, Options{CacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	// BFS levels are integers: the file-backed catalog must reproduce
	// the in-memory engine's result checksum exactly.
	b1, b2 := NewBFS(0), NewBFS(0)
	if _, err := eng.Run(b1); err != nil {
		t.Fatalf("bfs on file-backed catalog: %v", err)
	}
	if _, err := ref.Run(b2); err != nil {
		t.Fatalf("bfs on reference engine: %v", err)
	}
	if s1, s2 := b1.Result().Checksum(), b2.Result().Checksum(); s1 != s2 {
		t.Fatalf("bfs: file-backed checksum %s != in-memory checksum %s", s1, s2)
	}

	// PageRank sums floats in scheduling order, so exact bits vary run
	// to run; the file-backed scores must agree within float tolerance.
	p1, p2 := NewPageRank(), NewPageRank()
	p1.Iters, p2.Iters = 5, 5 // enough to touch every edge list repeatedly
	if _, err := eng.Run(p1); err != nil {
		t.Fatalf("pagerank on file-backed catalog: %v", err)
	}
	if _, err := ref.Run(p2); err != nil {
		t.Fatalf("pagerank on reference engine: %v", err)
	}
	if len(p1.Scores) != len(p2.Scores) {
		t.Fatalf("pagerank score lengths differ: %d vs %d", len(p1.Scores), len(p2.Scores))
	}
	for v := range p1.Scores {
		d := p1.Scores[v] - p2.Scores[v]
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("pagerank diverges at vertex %d: %g vs %g", v, p1.Scores[v], p2.Scores[v])
		}
	}

	if img.OutData != nil || img.InData != nil {
		t.Fatal("queries materialized edge data in RAM")
	}
}

// TestFileBackedGraphRejectsInMemoryMode pins the mode contract:
// file-backed images serve semi-external-memory only.
func TestFileBackedGraphRejectsInMemoryMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.fg")
	if _, err := BuildGraphFile(path, GenerateRMATStream(8, 4, 1), BuildOptions{Directed: true, TmpDir: dir}); err != nil {
		t.Fatal(err)
	}
	g, err := OpenGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if !g.FileBacked() {
		t.Fatal("OpenGraphFile must return a file-backed graph")
	}
	if _, err := Open(g, Options{InMemory: true}); err == nil {
		t.Fatal("in-memory engine over a file-backed graph must fail")
	}
	// Semi-external-memory mode works.
	eng, err := Open(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bfs := NewBFS(0)
	if _, err := eng.Run(bfs); err != nil {
		t.Fatal(err)
	}
}

// TestBuildGraphFileWeighted exercises attribute generation through
// the streaming path against the in-memory weighted builder.
func TestBuildGraphFileWeighted(t *testing.T) {
	attr := func(src, dst VertexID, buf []byte) {
		buf[0], buf[1], buf[2], buf[3] = byte(src), byte(dst), byte(src^dst), 1
	}
	dir := t.TempDir()
	streamed := filepath.Join(dir, "w.fg")
	edges := GenerateRMAT(10, 4, 3)
	if _, err := BuildGraphFile(streamed, GenerateRMATStream(10, 4, 3), BuildOptions{
		NumVertices: 1 << 10, Directed: true, AttrSize: 4, Attr: attr, TmpDir: dir,
	}); err != nil {
		t.Fatal(err)
	}
	inMem := filepath.Join(dir, "w-inmem.fg")
	if err := NewWeightedGraph(1<<10, edges, Directed, attr).SaveFile(inMem); err != nil {
		t.Fatal(err)
	}
	if a, b := fileChecksum(t, streamed), fileChecksum(t, inMem); a != b {
		t.Fatalf("weighted streaming image %x != in-memory image %x", a, b)
	}
}
