package flashgraph

import (
	"bytes"
	"path/filepath"
	"testing"

	"flashgraph/internal/core"
)

func TestQuickstartFlow(t *testing.T) {
	g := NewGraph(4, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}, Directed)
	eng, err := Open(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bfs := NewBFS(0)
	st, err := eng.Run(bfs)
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range []int32{0, 1, 2, 3} {
		if bfs.Level[v] != want {
			t.Fatalf("level[%d] = %d, want %d", v, bfs.Level[v], want)
		}
	}
	if st.Iterations != 4 {
		t.Fatalf("iterations = %d, want 4", st.Iterations)
	}
}

func TestInMemoryOption(t *testing.T) {
	g := NewGraph(1<<8, GenerateRMAT(8, 4, 1), Directed)
	eng, err := Open(g, Options{InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pr := NewPageRank()
	st, err := eng.Run(pr)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeviceReads != 0 {
		t.Fatal("in-memory engine must not touch devices")
	}
	if len(pr.Scores) != g.NumVertices() {
		t.Fatal("missing scores")
	}
}

func TestGraphMetadata(t *testing.T) {
	g := NewGraph(100, GenerateRMAT(6, 4, 2)[:200], Directed)
	if g.NumVertices() != 100 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.SizeBytes() == 0 || g.IndexBytes() == 0 {
		t.Fatal("zero metadata")
	}
	if !g.Directed() {
		t.Fatal("directedness lost")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := NewGraph(1<<7, GenerateRMAT(7, 4, 3), Directed)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip metadata mismatch")
	}
	// Both must produce identical BFS results.
	run := func(gr *Graph) []int32 {
		eng, err := Open(gr, Options{InMemory: true})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		bfs := NewBFS(0)
		if _, err := eng.Run(bfs); err != nil {
			t.Fatal(err)
		}
		return bfs.Level
	}
	a, b := run(g), run(g2)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("BFS differs at %d after round trip", v)
		}
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.fg")
	g := NewGraph(64, GenerateRMAT(6, 4, 4), Directed)
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("file round trip mismatch")
	}
}

func TestWeightedGraphSSSP(t *testing.T) {
	attr := func(src, dst VertexID, buf []byte) {
		buf[0], buf[1], buf[2], buf[3] = 1, 0, 0, 0 // weight 1
	}
	g := NewWeightedGraph(4, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, Directed, attr)
	eng, err := Open(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sp := NewSSSP(0)
	if _, err := eng.Run(sp); err != nil {
		t.Fatal(err)
	}
	if sp.Dist[2] != 2 {
		t.Fatalf("dist[2] = %d, want 2", sp.Dist[2])
	}
}

func TestAdvancedEngineConfig(t *testing.T) {
	g := NewGraph(1<<8, GenerateRMAT(8, 6, 5), Directed)
	eng, err := Open(g, Options{
		CacheBytes: 1 << 20,
		Engine:     &core.Config{Threads: 2, Sched: core.SchedCustom},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ss := NewScanStat()
	if _, err := eng.Run(ss); err != nil {
		t.Fatal(err)
	}
	if ss.Max <= 0 {
		t.Fatalf("scan max = %d", ss.Max)
	}
}

func TestOpenRequiresFSOrMemory(t *testing.T) {
	// Options.Engine with neither FS nor InMemory must get an FS built
	// by Open — i.e. this should work, not error.
	g := NewGraph(16, []Edge{{Src: 0, Dst: 1}}, Directed)
	eng, err := Open(g, Options{Engine: &core.Config{Threads: 1}})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
}

func TestParseEdgeListPublic(t *testing.T) {
	edges, n, err := ParseEdgeList(bytes.NewBufferString("0 1\n1 2\n"))
	if err != nil || n != 3 || len(edges) != 2 {
		t.Fatalf("parse: %v %d %v", edges, n, err)
	}
}

func TestGenerateClusteredPublic(t *testing.T) {
	edges := GenerateClustered(10, 20, 4, 1)
	if len(edges) != 10*20*4 {
		t.Fatalf("edges = %d", len(edges))
	}
	g := NewGraph(200, edges, Directed)
	eng, err := Open(g, Options{InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	wcc := NewWCC()
	if _, err := eng.Run(wcc); err != nil {
		t.Fatal(err)
	}
}
