package flashgraph

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"flashgraph/internal/core"
)

func TestQuickstartFlow(t *testing.T) {
	g := NewGraph(4, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}, Directed)
	eng, err := Open(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bfs := NewBFS(0)
	st, err := eng.Run(bfs)
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range []int32{0, 1, 2, 3} {
		if bfs.Level[v] != want {
			t.Fatalf("level[%d] = %d, want %d", v, bfs.Level[v], want)
		}
	}
	if st.Iterations != 4 {
		t.Fatalf("iterations = %d, want 4", st.Iterations)
	}
}

func TestInMemoryOption(t *testing.T) {
	g := NewGraph(1<<8, GenerateRMAT(8, 4, 1), Directed)
	eng, err := Open(g, Options{InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pr := NewPageRank()
	st, err := eng.Run(pr)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeviceReads != 0 {
		t.Fatal("in-memory engine must not touch devices")
	}
	if len(pr.Scores) != g.NumVertices() {
		t.Fatal("missing scores")
	}
}

func TestGraphMetadata(t *testing.T) {
	g := NewGraph(100, GenerateRMAT(6, 4, 2)[:200], Directed)
	if g.NumVertices() != 100 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.SizeBytes() == 0 || g.IndexBytes() == 0 {
		t.Fatal("zero metadata")
	}
	if !g.Directed() {
		t.Fatal("directedness lost")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := NewGraph(1<<7, GenerateRMAT(7, 4, 3), Directed)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip metadata mismatch")
	}
	// Both must produce identical BFS results.
	run := func(gr *Graph) []int32 {
		eng, err := Open(gr, Options{InMemory: true})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		bfs := NewBFS(0)
		if _, err := eng.Run(bfs); err != nil {
			t.Fatal(err)
		}
		return bfs.Level
	}
	a, b := run(g), run(g2)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("BFS differs at %d after round trip", v)
		}
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.fg")
	g := NewGraph(64, GenerateRMAT(6, 4, 4), Directed)
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("file round trip mismatch")
	}
}

func TestWeightedGraphSSSP(t *testing.T) {
	attr := func(src, dst VertexID, buf []byte) {
		buf[0], buf[1], buf[2], buf[3] = 1, 0, 0, 0 // weight 1
	}
	g := NewWeightedGraph(4, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, Directed, attr)
	eng, err := Open(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sp := NewSSSP(0)
	if _, err := eng.Run(sp); err != nil {
		t.Fatal(err)
	}
	if sp.Dist[2] != 2 {
		t.Fatalf("dist[2] = %d, want 2", sp.Dist[2])
	}
}

func TestAdvancedEngineConfig(t *testing.T) {
	g := NewGraph(1<<8, GenerateRMAT(8, 6, 5), Directed)
	eng, err := Open(g, Options{
		CacheBytes: 1 << 20,
		Engine:     &core.Config{Threads: 2, Sched: core.SchedCustom},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ss := NewScanStat()
	if _, err := eng.Run(ss); err != nil {
		t.Fatal(err)
	}
	if ss.Max <= 0 {
		t.Fatalf("scan max = %d", ss.Max)
	}
}

func TestOpenRequiresFSOrMemory(t *testing.T) {
	// Options.Engine with neither FS nor InMemory must get an FS built
	// by Open — i.e. this should work, not error.
	g := NewGraph(16, []Edge{{Src: 0, Dst: 1}}, Directed)
	eng, err := Open(g, Options{Engine: &core.Config{Threads: 1}})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
}

func TestParseEdgeListPublic(t *testing.T) {
	edges, n, err := ParseEdgeList(bytes.NewBufferString("0 1\n1 2\n"))
	if err != nil || n != 3 || len(edges) != 2 {
		t.Fatalf("parse: %v %d %v", edges, n, err)
	}
}

func TestGenerateClusteredPublic(t *testing.T) {
	edges := GenerateClustered(10, 20, 4, 1)
	if len(edges) != 10*20*4 {
		t.Fatalf("edges = %d", len(edges))
	}
	g := NewGraph(200, edges, Directed)
	eng, err := Open(g, Options{InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	wcc := NewWCC()
	if _, err := eng.Run(wcc); err != nil {
		t.Fatal(err)
	}
}

// TestCloseIdempotent is the regression test for double-Close: an
// engine (SEM or in-memory) must release what it owns exactly once and
// tolerate repeated Close calls without panicking.
func TestCloseIdempotent(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sem", Options{}},
		{"in-memory", Options{InMemory: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGraph(1<<6, GenerateRMAT(6, 4, 3), Directed)
			eng, err := Open(g, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(NewBFS(0)); err != nil {
				t.Fatal(err)
			}
			eng.Close()
			eng.Close() // must not panic or double-release
			eng.Close()
			// The primary run context is dropped and later Runs fail
			// explicitly instead of using released state.
			if eng.Core() != nil {
				t.Fatal("Core() non-nil after Close")
			}
			if _, err := eng.Run(NewBFS(0)); err == nil {
				t.Fatal("Run after Close succeeded")
			}
		})
	}
}

// TestLoadTimeDuration pins the LoadTime signature fix: a
// time.Duration, non-negative, and zero only plausibly (SEM loads do
// measurable work).
func TestLoadTimeDuration(t *testing.T) {
	g := NewGraph(1<<7, GenerateRMAT(7, 4, 4), Directed)
	eng, err := Open(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var d time.Duration = eng.LoadTime()
	if d < 0 {
		t.Fatalf("LoadTime = %v, want >= 0", d)
	}
}

// TestCatalogSharesOneSubstrate opens two graphs through a Catalog and
// proves they share one SAFS instance and page cache: both engines
// report the same FS, runs on both succeed, and the shared cache sees
// traffic from each graph's files.
func TestCatalogSharesOneSubstrate(t *testing.T) {
	cat := NewCatalog(Options{CacheBytes: 1 << 20})
	defer cat.Close()

	gA := NewGraph(1<<7, GenerateRMAT(7, 5, 5), Directed)
	gB := NewGraph(1<<6, GenerateRMAT(6, 4, 6), Directed)
	engA, err := cat.Add("a", gA)
	if err != nil {
		t.Fatal(err)
	}
	engB, err := cat.Add("b", gB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Add("a", gA); err == nil {
		t.Fatal("duplicate catalog name accepted")
	}
	if _, err := cat.Add("", gA); err == nil {
		t.Fatal("empty catalog name accepted")
	}
	if names := cat.Graphs(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Graphs() = %v", names)
	}
	if engA.Shared().FS() == nil || engA.Shared().FS() != engB.Shared().FS() {
		t.Fatal("catalog engines must share one SAFS instance")
	}

	bfs := NewBFS(0)
	if _, err := engA.Run(bfs); err != nil {
		t.Fatal(err)
	}
	pr := NewPageRank()
	if _, err := engB.Run(pr); err != nil {
		t.Fatal(err)
	}
	if rs := bfs.Result(); rs == nil || len(rs.Vectors()) == 0 {
		t.Fatal("bfs produced no typed result")
	}
	cs := cat.FS().Cache().Stats()
	if cs.Hits+cs.Misses == 0 {
		t.Fatal("no traffic on the shared page cache")
	}

	// Engine.Close on a catalog engine must not tear down the shared
	// substrate; graph B keeps working after A's engine is closed.
	engA.Close()
	if _, err := engB.Run(NewWCC()); err != nil {
		t.Fatalf("graph b after closing a's engine: %v", err)
	}
	cat.Close()
	cat.Close() // catalog Close is idempotent too
}

// TestCatalogClosedRejectsAdd pins the closed-catalog error path.
func TestCatalogClosedRejectsAdd(t *testing.T) {
	cat := NewCatalog(Options{})
	cat.Close()
	if _, err := cat.Add("late", NewGraph(4, []Edge{{Src: 0, Dst: 1}}, Directed)); err == nil {
		t.Fatal("Add after Close accepted")
	}
}
