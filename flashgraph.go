// Package flashgraph is a Go reproduction of FlashGraph (Zheng et al.,
// FAST'15): a semi-external-memory graph engine that keeps algorithmic
// vertex state in RAM, streams edge lists from an array of commodity
// SSDs through a user-space filesystem (SAFS), and reaches performance
// comparable to in-memory engines.
//
// The public API wraps the internal packages:
//
//   - build or load a graph (NewGraph, LoadImage, Generate* helpers);
//   - open an engine over it (Open), either semi-external-memory on a
//     simulated SSD array or fully in-memory;
//   - run built-in algorithms (BFS, PageRank, WCC, BC, TriangleCount,
//     ScanStat, KCore, SSSP, PPR) or any custom vertex program
//     implementing Algorithm;
//   - serve any of them — including custom programs published with
//     Register / AlgorithmSpec — concurrently over HTTP via NewServer
//     (see server.go and examples/custom).
//
// Quickstart:
//
//	g := flashgraph.NewGraph(4, []flashgraph.Edge{{0, 1}, {1, 2}, {2, 3}}, flashgraph.Directed)
//	eng, _ := flashgraph.Open(g, flashgraph.Options{})
//	defer eng.Close()
//	bfs := flashgraph.NewBFS(0)
//	stats, _ := eng.Run(bfs)
//	fmt.Println(bfs.Level, stats.Elapsed)
package flashgraph

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"flashgraph/internal/algo"
	"flashgraph/internal/core"
	"flashgraph/internal/gen"
	"flashgraph/internal/graph"
	"flashgraph/internal/result"
	"flashgraph/internal/safs"
	"flashgraph/internal/ssd"
)

// Core type aliases: vertex programs written against the public API use
// the same types the engine does.
type (
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Edge is a directed edge (src, dst).
	Edge = graph.Edge
	// EdgeDir selects an edge-list direction.
	EdgeDir = graph.EdgeDir
	// PageVertex is a decoded edge-list record handed to RunOnVertex.
	PageVertex = graph.PageVertex
	// Message is the unit of vertex communication.
	Message = core.Message
	// Ctx is the callback execution context.
	Ctx = core.Ctx
	// Algorithm is the vertex-program interface (Run, RunOnVertex,
	// RunOnMessage; see core.Algorithm for the full contract).
	Algorithm = core.Algorithm
	// RunStats reports timing, I/O, and memory for one run.
	RunStats = core.RunStats
	// AttrFunc generates per-edge attribute bytes at build time.
	AttrFunc = graph.AttrFunc
	// Encoding selects the on-SSD edge-list layout of a graph image.
	Encoding = graph.Encoding
	// ResultSet is the uniform typed result every built-in algorithm
	// returns from its Result method: named per-vertex vectors plus
	// named scalars, with point lookup, paginated top-K, reductions,
	// and a deterministic checksum.
	ResultSet = result.ResultSet
	// ResultVector is one named per-vertex property column.
	ResultVector = result.Vector
	// ResultEntry is one (vertex, value) pair from lookups and top-K.
	ResultEntry = result.Entry
)

// NewResultSet returns an empty ResultSet for the named algorithm —
// what a custom vertex program builds in its Result method (add
// vectors with AddInt32/AddUint32/AddUint64/AddFloat64/AddBool and
// scalars with AddScalar).
func NewResultSet(algorithm string) *ResultSet { return result.New(algorithm) }

// Edge directions.
const (
	// OutEdges selects out-edge lists.
	OutEdges = graph.OutEdges
	// InEdges selects in-edge lists (directed graphs).
	InEdges = graph.InEdges
)

// Directedness of a graph under construction.
const (
	// Directed builds separate in- and out-edge lists.
	Directed = true
	// Undirected stores each edge in both endpoints' lists.
	Undirected = false
)

// Edge-list encodings (the v2 container records the choice per image).
const (
	// EncodingRaw stores each neighbor as a raw 4-byte ID — fixed-size
	// records, O(1) random edge access. The default.
	EncodingRaw = graph.EncodingRaw
	// EncodingDelta stores sorted neighbor IDs as varint deltas —
	// data-dependent record sizes that cut bytes per edge on graphs
	// with ID locality, at the cost of sequential-only cheap decoding.
	EncodingDelta = graph.EncodingDelta
	// EncodingBlock partitions the edge list into a 2D grid of edge
	// blocks (CSR within each block, varint-delta columns) laid out so
	// one row stripe is one contiguous extent — the layout built for
	// the streaming SpMV engine. Block images have no per-vertex
	// records, so they serve only EngineSpMV.
	EncodingBlock = graph.EncodingBlock
)

// ParseEncoding converts an encoding name ("raw", "delta", "block") as
// used by the fg-gen/fg-convert -encoding flags into an Encoding.
func ParseEncoding(s string) (Encoding, error) { return graph.ParseEncoding(s) }

// Graph is an immutable FlashGraph image: compact edge-list files plus
// the in-memory index.
type Graph struct {
	img *graph.Image
}

// NewGraph builds a graph from an edge list. Duplicate edges and
// self-loops are removed; neighbor lists are sorted by ID (the on-SSD
// layout FlashGraph requires).
func NewGraph(numVertices int, edges []Edge, directed bool) *Graph {
	a := graph.FromEdges(numVertices, edges, directed)
	a.Dedup()
	return &Graph{img: graph.BuildImage(a, 0, nil)}
}

// NewWeightedGraph builds a graph whose edges carry 4-byte attributes
// generated by attr (e.g. SSSP weights).
func NewWeightedGraph(numVertices int, edges []Edge, directed bool, attr AttrFunc) *Graph {
	a := graph.FromEdges(numVertices, edges, directed)
	a.Dedup()
	return &Graph{img: graph.BuildImage(a, 4, attr)}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.img.NumV }

// NumEdges returns the edge count (undirected edges counted once).
func (g *Graph) NumEdges() int64 { return g.img.NumEdges }

// Directed reports edge-list layout.
func (g *Graph) Directed() bool { return g.img.Directed }

// SizeBytes returns the on-SSD size of the edge-list files.
func (g *Graph) SizeBytes() int64 { return g.img.DataSize() }

// Encoding reports the on-SSD edge-list layout of the image.
func (g *Graph) Encoding() Encoding { return g.img.Encoding }

// IndexBytes returns the in-memory index footprint (the paper's ~1.25
// B/vertex undirected, ~2.5 B/vertex directed).
func (g *Graph) IndexBytes() int64 { return g.img.IndexMemory() }

// OutDegree returns v's out-degree.
func (g *Graph) OutDegree(v VertexID) uint32 { return g.img.OutIndex.Degree(v) }

// Image exposes the underlying image for advanced integrations
// (benchmark harness, custom loaders).
func (g *Graph) Image() *graph.Image { return g.img }

// Save writes the graph image to w in FlashGraph's image format.
func (g *Graph) Save(w io.Writer) error { return g.img.Encode(w) }

// SaveAs writes the graph image to w re-encoded in the given edge-list
// layout — the conversion path behind fg-convert -reencode. The stored
// bytes are decoded straight into the target encoder, so converting
// between raw, delta, and block layouts never round-trips through an
// edge list or materializes an in-memory adjacency.
func (g *Graph) SaveAs(w io.Writer, enc Encoding) error { return g.img.EncodeAs(w, enc) }

// SaveFile writes the image to a file. The write is crash-safe: bytes
// land in a temp file that is fsynced and renamed over path only once
// complete, so an interrupted save never leaves a partial image.
func (g *Graph) SaveFile(path string) error {
	return graph.AtomicWriteFile(path, g.Save)
}

// SaveFileAs writes the image to a file re-encoded in the given
// edge-list layout (see SaveAs), with the same crash-safe temp-file
// and rename protocol as SaveFile.
func (g *Graph) SaveFileAs(path string, enc Encoding) error {
	return graph.AtomicWriteFile(path, func(w io.Writer) error { return g.SaveAs(w, enc) })
}

// Close releases the backing file of a file-backed graph
// (OpenGraphFile). It is a no-op, and safe, for in-memory graphs.
func (g *Graph) Close() error { return g.img.Close() }

// FileBacked reports whether edge data lives on disk (OpenGraphFile)
// rather than in RAM.
func (g *Graph) FileBacked() bool { return g.img.FileBacked() }

// Load reads a graph image written by Save.
func Load(r io.Reader) (*Graph, error) {
	img, err := graph.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Graph{img: img}, nil
}

// LoadFile reads a graph image from a file, decoding edge data into
// RAM. For graphs larger than memory use OpenGraphFile instead.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// OpenGraphFile opens a graph image file without loading edge data
// into memory: only the container header and the compact index (the
// paper's ~1.25 B/vertex/direction) become resident, while edge lists
// stay on disk and are streamed into SAFS when the graph is opened or
// added to a Catalog. This is the serving path for graphs larger than
// RAM. Close the graph when done with it.
func OpenGraphFile(path string) (*Graph, error) {
	img, err := graph.OpenImageFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{img: img}, nil
}

// BuildStats reports what a streaming graph build cost.
type BuildStats = graph.BuildStats

// EdgeSource streams edges into a builder one at a time; implementors
// must call emit for every edge and propagate its error. The
// Generate*Stream helpers adapt the built-in generators.
type EdgeSource = func(emit func(Edge) error) error

// BuildOptions configures BuildGraphFile.
type BuildOptions struct {
	// NumVertices fixes the vertex count; 0 means "max ID seen + 1".
	NumVertices int
	// Directed selects separate in-/out-edge lists.
	Directed bool
	// Encoding selects the on-SSD edge-list layout (default
	// EncodingRaw). EncodingDelta delta-compresses the sorted neighbor
	// IDs — typically 25–40% smaller images, and proportionally fewer
	// SSD bytes per query, on graphs with ID locality.
	Encoding Encoding
	// AttrSize and Attr attach fixed-size per-edge attributes
	// (weights), generated deterministically at encode time.
	AttrSize int
	Attr     AttrFunc
	// MemBytes bounds the builder's sort memory (excluding the compact
	// index). Default 256MiB.
	MemBytes int64
	// TmpDir receives spilled sort runs. Default: system temp dir.
	TmpDir string
	// KeepDuplicates retains duplicate edges and self-loops.
	KeepDuplicates bool
}

// BuildGraphFile constructs a graph image file from an edge stream
// under a fixed memory budget: edges are externally sorted (spilling
// runs to TmpDir) and the image is written sequentially, so graphs
// bounded by disk — not RAM — can be built. The result is served with
// OpenGraphFile / Catalog.AddFile.
func BuildGraphFile(path string, edges EdgeSource, opts BuildOptions) (*BuildStats, error) {
	b := graph.NewStreamBuilder(graph.BuildConfig{
		NumV:      opts.NumVertices,
		Directed:  opts.Directed,
		Encoding:  opts.Encoding,
		AttrSize:  opts.AttrSize,
		Attr:      opts.Attr,
		MemBytes:  opts.MemBytes,
		TmpDir:    opts.TmpDir,
		KeepDupes: opts.KeepDuplicates,
	})
	defer b.Close()
	if err := edges(b.Add); err != nil {
		return nil, fmt.Errorf("flashgraph: edge stream: %w", err)
	}
	st, err := b.WriteFile(path)
	if err != nil {
		return nil, fmt.Errorf("flashgraph: building %s: %w", path, err)
	}
	return st, nil
}

// ParseEdgeList reads a whitespace-separated text edge list.
func ParseEdgeList(r io.Reader) ([]Edge, int, error) { return graph.ParseEdgeList(r) }

// GenerateRMAT produces a power-law (Kronecker) edge list with 2^scale
// vertices — the stand-in for social/web graphs like Twitter.
func GenerateRMAT(scale, edgesPerVertex int, seed uint64) []Edge {
	return gen.RMAT(scale, edgesPerVertex, seed)
}

// GenerateClustered produces a domain-clustered web-like edge list (the
// stand-in for page-crawl graphs; good vertex-ID locality).
func GenerateClustered(domains, domainSize, edgesPerVertex int, seed uint64) []Edge {
	return gen.Clustered(gen.ClusteredConfig{
		Domains:        domains,
		DomainSize:     domainSize,
		EdgesPerVertex: edgesPerVertex,
		Seed:           seed,
	})
}

// GenerateRMATStream returns an EdgeSource emitting the exact edge
// sequence GenerateRMAT materializes, without ever holding it —
// feed it to BuildGraphFile to build power-law graphs larger than RAM.
func GenerateRMATStream(scale, edgesPerVertex int, seed uint64) EdgeSource {
	return func(emit func(Edge) error) error {
		return gen.RMATStream(scale, edgesPerVertex, seed, emit)
	}
}

// GenerateClusteredStream returns an EdgeSource emitting the exact
// edge sequence GenerateClustered materializes.
func GenerateClusteredStream(domains, domainSize, edgesPerVertex int, seed uint64) EdgeSource {
	return func(emit func(Edge) error) error {
		return gen.ClusteredStream(gen.ClusteredConfig{
			Domains:        domains,
			DomainSize:     domainSize,
			EdgesPerVertex: edgesPerVertex,
			Seed:           seed,
		}, emit)
	}
}

// Options configures an engine. The zero value gives a semi-external-
// memory engine on a simulated 4-SSD array with a 64MiB page cache.
type Options struct {
	// InMemory replaces the SSD array with memory-resident edge lists
	// (the paper's FG-mem mode).
	InMemory bool
	// Threads is the number of worker threads (default 8).
	Threads int
	// CacheBytes sizes the SAFS page cache (default 64MiB).
	CacheBytes int64
	// PageSize is the I/O granularity (default 4KiB; Figure 13 sweeps
	// it).
	PageSize int
	// Devices is the number of simulated SSDs (default 4).
	Devices int
	// Throttle enables realistic device timing; off, devices run at
	// memory speed but still account virtual busy time.
	Throttle bool
	// DeviceProfile overrides the per-SSD service-time model (optional).
	DeviceProfile *ssd.DeviceParams
	// StoreDir backs each simulated SSD with a file in this directory
	// instead of RAM — the configuration for datasets larger than
	// memory. Empty keeps in-memory stores.
	StoreDir string
	// DirectIO opens the per-device backing files with O_DIRECT where
	// the filesystem supports it (falling back to buffered reads with
	// cache-drop hints where it does not), so SAFS's page cache is the
	// only cache and the OS never double-buffers edge data. Requires
	// StoreDir.
	DirectIO bool
	// DecodeCacheBytes budgets a shared decoded-record LRU for hot
	// hubs of delta-encoded graphs. 0 (the default) disables it.
	DecodeCacheBytes int64
	// DecodeMinDegree is the decode cache's admission threshold
	// (default 64).
	DecodeMinDegree uint32
	// MaxRunning bounds running vertices per thread (default 4000).
	MaxRunning int
	// Engine passes through advanced engine knobs (merge mode,
	// scheduler, range shift). Fields set here win over the above.
	Engine *core.Config
}

// Engine executes algorithms over one opened graph. Run is safe for
// concurrent use: each call executes on its own lightweight run context
// while all calls share the graph image, in-memory index, SAFS instance,
// page cache, and simulated SSD array (the paper's core asset, amortized
// across queries). For admission control and query tracking on top of
// this, see internal/serve and cmd/fg-serve.
type Engine struct {
	shared    *core.Shared
	primary   atomic.Pointer[core.Engine] // reusable run context for serial callers
	primaryMu sync.Mutex                  // claims the primary run for one Run call
	array     *ssd.Array                  // owned; nil when a Catalog owns the substrate
	fs        *safs.FS
	closed    atomic.Bool
}

// coreConfig translates Options into the engine configuration template.
func (opts Options) coreConfig() core.Config {
	cfg := core.Config{
		Threads:    opts.Threads,
		MaxRunning: opts.MaxRunning,
		InMemory:   opts.InMemory,
	}
	if opts.Engine != nil {
		cfg = *opts.Engine
		cfg.InMemory = cfg.InMemory || opts.InMemory
	}
	if cfg.DecodeCacheBytes == 0 {
		cfg.DecodeCacheBytes = opts.DecodeCacheBytes
	}
	if cfg.DecodeMinDegree == 0 {
		cfg.DecodeMinDegree = opts.DecodeMinDegree
	}
	return cfg
}

// newSubstrate builds the simulated SSD array and SAFS instance the
// options describe. With StoreDir set each device is backed by a file
// (O_DIRECT when DirectIO asks for it and the filesystem agrees);
// otherwise devices are RAM-resident.
func (opts Options) newSubstrate() (*ssd.Array, *safs.FS, error) {
	dp := ssd.DeviceParams{Throttle: opts.Throttle}
	if opts.DeviceProfile != nil {
		dp = *opts.DeviceProfile
	}
	params := ssd.ArrayParams{Devices: opts.Devices, Device: dp}
	var array *ssd.Array
	if opts.StoreDir != "" {
		if err := os.MkdirAll(opts.StoreDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("flashgraph: store dir: %w", err)
		}
		n := opts.Devices
		if n == 0 {
			n = 4
		}
		stores := make([]ssd.Store, n)
		for i := range stores {
			s, err := ssd.NewStore(filepath.Join(opts.StoreDir, fmt.Sprintf("ssd%d.dat", i)), ssd.StoreConfig{DirectIO: opts.DirectIO})
			if err != nil {
				for _, prev := range stores[:i] {
					if c, ok := prev.(interface{ Close() error }); ok {
						c.Close()
					}
				}
				return nil, nil, fmt.Errorf("flashgraph: device store %d: %w", i, err)
			}
			stores[i] = s
		}
		array = ssd.NewArrayWithStores(params, stores)
	} else if opts.DirectIO {
		return nil, nil, fmt.Errorf("flashgraph: DirectIO requires StoreDir (in-memory devices have no files to open O_DIRECT)")
	} else {
		array = ssd.NewArray(params)
	}
	fs := safs.New(array, safs.Config{
		CacheBytes: opts.CacheBytes,
		PageSize:   opts.PageSize,
	})
	return array, fs, nil
}

// Open loads g into a fresh engine. Close the engine to stop the
// simulated devices.
func Open(g *Graph, opts Options) (*Engine, error) {
	cfg := opts.coreConfig()
	e := &Engine{}
	if !cfg.InMemory && cfg.FS == nil {
		var err error
		e.array, e.fs, err = opts.newSubstrate()
		if err != nil {
			return nil, err
		}
		cfg.FS = e.fs
	}
	shared, err := core.NewShared(g.img, cfg)
	if err != nil {
		if e.array != nil {
			e.array.Close()
		}
		return nil, fmt.Errorf("flashgraph: %w", err)
	}
	e.shared = shared
	e.primary.Store(shared.NewRun())
	return e, nil
}

// Run executes alg to completion. It is safe to call concurrently from
// multiple goroutines: each call gets a private run context (vertex
// scheduling, message buffers, iteration barrier) over the shared graph
// and cache. Use a distinct Algorithm value per call — algorithm state
// belongs to a single run. Serial callers reuse the primary run
// context (no per-call allocation); only overlapping calls pay for a
// fresh one.
func (e *Engine) Run(alg Algorithm) (RunStats, error) {
	if e.closed.Load() {
		return RunStats{}, fmt.Errorf("flashgraph: engine is closed")
	}
	if e.primaryMu.TryLock() {
		defer e.primaryMu.Unlock()
		primary := e.primary.Load()
		if primary == nil { // Close won the race for primaryMu
			return RunStats{}, fmt.Errorf("flashgraph: engine is closed")
		}
		st, err := primary.Run(alg)
		if err != nil {
			// A failed run poisons its context; publish a clean primary
			// for later serial calls.
			e.primary.Store(e.shared.NewRun())
		}
		return st, err
	}
	return e.shared.NewRun().Run(alg)
}

// RunOn executes a program on an execution engine of the given kind —
// EngineVertex (the default message-passing runtime, what Run uses) or
// EngineSpMV (streaming dense sweeps, for programs with an SpMV form
// such as PageRank, WCC, and LabelProp). Each call gets a private run
// context, so concurrent calls are safe.
func (e *Engine) RunOn(kind EngineKind, p Program) (RunStats, error) {
	if e.closed.Load() {
		return RunStats{}, fmt.Errorf("flashgraph: engine is closed")
	}
	eng, err := e.shared.NewEngine(kind)
	if err != nil {
		return RunStats{}, fmt.Errorf("flashgraph: %w", err)
	}
	defer eng.Close()
	return eng.Run(p)
}

// Shared exposes the substrate all runs execute over (graph image, SAFS
// instance, page cache). The serve layer builds on it.
func (e *Engine) Shared() *core.Shared { return e.shared }

// Core exposes the primary run context for advanced serial use (custom
// hooks, degree queries inside schedulers). It is NOT safe to use while
// concurrent Run calls are in flight on derived runs — spawn a private
// run with Shared().NewRun() instead. Returns nil after Close.
func (e *Engine) Core() *core.Engine { return e.primary.Load() }

// LoadTime reports how long writing the image to the SSDs took.
func (e *Engine) LoadTime() time.Duration { return e.shared.LoadTime() }

// EstimateDiameter estimates the graph's diameter ignoring direction
// via two semi-external BFS sweeps (double-sweep lower bound). Like
// Run, it executes on a private run context and may be called
// concurrently with other queries.
func (e *Engine) EstimateDiameter(start VertexID) (int, error) {
	return algo.EstimateDiameter(e.shared.NewRun(), start)
}

// Close releases everything the engine owns: it stops the simulated
// SSD array (a no-op for in-memory engines and for engines whose
// substrate a Catalog owns) and drops the primary run context so its
// worker state is collectable. Close is idempotent — calling it more
// than once is safe — and later Run calls fail with an error.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	e.primaryMu.Lock() // wait out a serial Run holding the primary
	e.primary.Store(nil)
	e.primaryMu.Unlock()
	if e.array != nil {
		e.array.Close()
	}
}

// Catalog opens N named graphs over ONE shared substrate: a single
// SAFS instance, page cache, and simulated SSD array serve every graph
// (the paper's amortization of the semi-external-memory substrate, now
// across graphs as well as queries). Each Add writes the graph's
// edge-list files into the shared filesystem under its name and returns
// an Engine whose runs compete for — and share — the one page cache.
//
// fg-serve builds on a Catalog to serve multiple graphs from one
// daemon, routing requests by graph name.
type Catalog struct {
	opts   Options
	array  *ssd.Array // nil in in-memory mode
	fs     *safs.FS
	subErr error // substrate construction failure; surfaced by Add

	mu      sync.Mutex
	engines map[string]*Engine
	order   []string
	owned   []*Graph // file-backed graphs AddFile opened; closed with the catalog
	closed  bool
}

// NewCatalog prepares an empty catalog. All graphs later added share
// the substrate these options describe; per-graph knobs (Threads,
// MaxRunning, Engine) apply to every graph's runs. A substrate that
// cannot be built (e.g. an unusable StoreDir) is reported by the first
// Add.
func NewCatalog(opts Options) *Catalog {
	c := &Catalog{opts: opts, engines: map[string]*Engine{}}
	if !opts.coreConfig().InMemory {
		c.array, c.fs, c.subErr = opts.newSubstrate()
	}
	return c
}

// FS exposes the shared SAFS instance (nil for in-memory catalogs).
func (c *Catalog) FS() *safs.FS { return c.fs }

// Add loads g under name and returns its engine. The engine shares the
// catalog's substrate: Engine.Close disables that one engine (later
// Runs on it fail) but leaves the shared substrate and every other
// graph untouched — close the catalog to stop the SSD array.
func (c *Catalog) Add(name string, g *Graph) (*Engine, error) {
	if name == "" {
		return nil, fmt.Errorf("flashgraph: catalog graph name must be non-empty")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("flashgraph: catalog is closed")
	}
	if c.subErr != nil {
		return nil, c.subErr
	}
	if _, dup := c.engines[name]; dup {
		return nil, fmt.Errorf("flashgraph: graph %q already in catalog", name)
	}
	cfg := c.opts.coreConfig()
	cfg.FS = c.fs
	cfg.GraphName = name
	shared, err := core.NewShared(g.img, cfg)
	if err != nil {
		return nil, fmt.Errorf("flashgraph: adding %q: %w", name, err)
	}
	e := &Engine{shared: shared, fs: c.fs} // array stays nil: the catalog owns it
	e.primary.Store(shared.NewRun())
	c.engines[name] = e
	c.order = append(c.order, name)
	return e, nil
}

// AddFile opens the image at path as a file-backed graph and adds it
// under name: only the header and compact index are loaded into
// memory, edge data streams disk→SAFS in chunks, and queries read it
// back through the shared page cache — serving graphs larger than
// RAM. The catalog owns the opened file and closes it with Close.
func (c *Catalog) AddFile(name, path string) (*Engine, error) {
	g, err := OpenGraphFile(path)
	if err != nil {
		return nil, fmt.Errorf("flashgraph: adding %q: %w", name, err)
	}
	e, err := c.Add(name, g)
	if err != nil {
		g.Close()
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		// Close raced in between Add and here and already snapshotted
		// c.owned; this graph's file would otherwise leak.
		c.mu.Unlock()
		g.Close()
		return nil, fmt.Errorf("flashgraph: catalog is closed")
	}
	c.owned = append(c.owned, g)
	c.mu.Unlock()
	return e, nil
}

// Engine returns the named graph's engine.
func (c *Catalog) Engine(name string) (*Engine, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.engines[name]
	return e, ok
}

// Graphs lists the catalog's graph names in insertion order.
func (c *Catalog) Graphs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Close stops the shared SSD array. Like Engine.Close it is idempotent.
func (c *Catalog) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	owned := c.owned
	c.owned = nil
	c.mu.Unlock()
	if c.array != nil {
		c.array.Close()
	}
	for _, g := range owned {
		g.Close()
	}
}

// Built-in algorithms (see internal/algo for the vertex programs).

// BFS is breadth-first search; see algo.BFS.
type BFS = algo.BFS

// NewBFS returns a BFS program rooted at src (out-edges).
func NewBFS(src VertexID) *BFS { return algo.NewBFS(src) }

// PageRank is delta-based PageRank; see algo.PageRank.
type PageRank = algo.PageRank

// NewPageRank returns PageRank with the paper's defaults (damping 0.85,
// 30 iterations).
func NewPageRank() *PageRank { return algo.NewPageRank() }

// WCC is weakly-connected components; see algo.WCC.
type WCC = algo.WCC

// NewWCC returns a WCC program.
func NewWCC() *WCC { return algo.NewWCC() }

// LabelProp is label-propagation community detection; see
// algo.LabelProp.
type LabelProp = algo.LabelProp

// NewLabelProp returns a label-propagation program with the default
// iteration cap.
func NewLabelProp() *LabelProp { return algo.NewLabelProp() }

// BC is single-source betweenness centrality; see algo.BC.
type BC = algo.BC

// NewBC returns a BC program rooted at src.
func NewBC(src VertexID) *BC { return algo.NewBC(src) }

// TriangleCount is triangle counting; see algo.TC.
type TriangleCount = algo.TC

// NewTriangleCount returns a TC program.
func NewTriangleCount() *TriangleCount { return algo.NewTC() }

// ScanStat is the maximum locality statistic; see algo.ScanStat. Run it
// with the custom scheduler for the paper's pruning:
//
//	opts.Engine = &core.Config{Sched: core.SchedCustom, ...}
type ScanStat = algo.ScanStat

// NewScanStat returns a scan-statistics program.
func NewScanStat() *ScanStat { return algo.NewScanStat() }

// KCore marks the k-core of an undirected graph; see algo.KCore.
type KCore = algo.KCore

// NewKCore returns a k-core program.
func NewKCore(k int) *KCore { return algo.NewKCore(k) }

// SSSP is single-source shortest paths over weighted edges; see
// algo.SSSP.
type SSSP = algo.SSSP

// Unreachable marks vertices SSSP could not reach.
const Unreachable = algo.Unreachable

// NewSSSP returns an SSSP program rooted at src (requires a graph built
// with NewWeightedGraph).
func NewSSSP(src VertexID) *SSSP { return algo.NewSSSP(src) }

// PPR is personalized PageRank — random walk with restart at a source
// vertex, following edge weights when the image has them; see
// algo.PPR.
type PPR = algo.PPR

// NewPPR returns a personalized PageRank program restarting at src.
func NewPPR(src VertexID) *PPR { return algo.NewPPR(src) }
