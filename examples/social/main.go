// Social: the paper's network-analysis motivation — triangle counting
// and scan statistics (anomaly detection via the maximum locality
// statistic [26]) on a power-law social graph, using the two most
// I/O-intensive access patterns FlashGraph supports: vertices reading
// many other vertices' edge lists, with the degree-descending custom
// scheduler pruning the long tail.
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"

	"flashgraph"
	"flashgraph/internal/core"
)

func main() {
	// An RMAT "social network": heavy-tailed degrees like Twitter.
	const scale = 11
	edges := flashgraph.GenerateRMAT(scale, 12, 7)
	g := flashgraph.NewGraph(1<<scale, edges, flashgraph.Directed)
	fmt.Printf("social graph: %d users, %d follows\n", g.NumVertices(), g.NumEdges())

	// Triangle counting: cohesion of the network.
	eng, err := flashgraph.Open(g, flashgraph.Options{
		Threads:    4,
		CacheBytes: g.SizeBytes() / 4,
		Throttle:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	tc := flashgraph.NewTriangleCount()
	st, err := eng.Run(tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntriangles: %d total in %v\n", tc.Total, st.Elapsed)
	// The most clustered users.
	bestV, bestT := 0, int64(-1)
	for v, n := range tc.PerVertex {
		if n > bestT {
			bestT, bestV = n, v
		}
	}
	fmt.Printf("most clustered user: %d with %d triangles\n", bestV, bestT)
	eng.Close()

	// Scan statistics with the custom degree-descending scheduler: the
	// paper's showcase for user-defined vertex scheduling — most
	// vertices are pruned without any I/O.
	eng2, err := flashgraph.Open(g, flashgraph.Options{
		CacheBytes: g.SizeBytes() / 4,
		Throttle:   true,
		Engine:     &core.Config{Threads: 4, Sched: core.SchedCustom, MaxRunning: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	ss := flashgraph.NewScanStat()
	st2, err := eng2.Run(ss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscan statistics in %v:\n", st2.Elapsed)
	fmt.Printf("  max locality statistic %d at user %d\n", ss.Max, ss.ArgMax)
	fmt.Printf("  %d neighborhoods computed, %d pruned by the scheduler\n", ss.Computed, ss.Skipped)
	fmt.Printf("  (an unusually dense neighborhood is the anomaly signal of [26])\n")
}
