// Shortestpath: single-source shortest paths over a weighted graph,
// demonstrating FlashGraph's edge attributes — weights live on the SSD
// next to the edges and stream through the same page-cache path as the
// adjacency data.
//
//	go run ./examples/shortestpath
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"flashgraph"
)

func main() {
	// A road-network-like grid with a few express links.
	const rows, cols = 48, 48
	var edges []flashgraph.Edge
	id := func(r, c int) flashgraph.VertexID { return flashgraph.VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, flashgraph.Edge{Src: id(r, c), Dst: id(r, c+1)})
				edges = append(edges, flashgraph.Edge{Src: id(r, c+1), Dst: id(r, c)})
			}
			if r+1 < rows {
				edges = append(edges, flashgraph.Edge{Src: id(r, c), Dst: id(r+1, c)})
				edges = append(edges, flashgraph.Edge{Src: id(r+1, c), Dst: id(r, c)})
			}
		}
	}
	// Express diagonals.
	for d := 0; d+8 < rows; d += 8 {
		edges = append(edges, flashgraph.Edge{Src: id(d, d), Dst: id(d+8, d+8)})
	}

	// Weights: local roads cost 3-12, express links cost 5.
	weight := func(src, dst flashgraph.VertexID, buf []byte) {
		w := uint32(3 + (uint32(src)*7+uint32(dst)*13)%10)
		if dst > src+flashgraph.VertexID(cols) { // express
			w = 5
		}
		binary.LittleEndian.PutUint32(buf, w)
	}
	g := flashgraph.NewWeightedGraph(rows*cols, edges, flashgraph.Directed, weight)
	fmt.Printf("road grid: %d junctions, %d roads (weighted image: %dKB)\n",
		g.NumVertices(), g.NumEdges(), g.SizeBytes()>>10)

	eng, err := flashgraph.Open(g, flashgraph.Options{Threads: 4, CacheBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	src := id(0, 0)
	sp := flashgraph.NewSSSP(src)
	st, err := eng.Run(sp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshortest paths from (0,0) in %v, %d iterations\n", st.Elapsed, st.Iterations)
	for _, probe := range [][2]int{{0, cols - 1}, {rows - 1, 0}, {rows - 1, cols - 1}, {rows / 2, cols / 2}} {
		v := id(probe[0], probe[1])
		fmt.Printf("  to (%2d,%2d): distance %d\n", probe[0], probe[1], sp.Dist[v])
	}
	reached := 0
	for _, d := range sp.Dist {
		if d != flashgraph.Unreachable {
			reached++
		}
	}
	fmt.Printf("  %d of %d junctions reachable\n", reached, g.NumVertices())
}
