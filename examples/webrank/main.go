// Webrank: the paper's web-analysis motivation — rank pages of a
// domain-clustered web crawl (the page-graph stand-in) with delta
// PageRank, then measure its weak connectivity, all in semi-external
// memory with a cache far smaller than the graph.
//
//	go run ./examples/webrank
package main

import (
	"fmt"
	"log"

	"flashgraph"
)

func main() {
	// A clustered "web crawl": 128 domains x 64 pages, mostly
	// intra-domain links plus forward cross-domain links (vertex IDs are
	// crawl-ordered by domain, which is what gives FlashGraph's page
	// cache its locality on real crawls).
	const domains, domainSize = 128, 64
	edges := flashgraph.GenerateClustered(domains, domainSize, 10, 42)
	g := flashgraph.NewGraph(domains*domainSize, edges, flashgraph.Directed)
	fmt.Printf("web crawl: %d pages, %d links, %dKB image\n",
		g.NumVertices(), g.NumEdges(), g.SizeBytes()>>10)

	// Cache only ~5%% of the graph: the paper's 1GB-vs-13GB regime.
	eng, err := flashgraph.Open(g, flashgraph.Options{
		Threads:    4,
		CacheBytes: g.SizeBytes() / 20,
		Throttle:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// PageRank.
	pr := flashgraph.NewPageRank()
	st, err := eng.Run(pr)
	if err != nil {
		log.Fatal(err)
	}
	top, err := pr.Result().TopK("score", 10, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop pages after %d iterations (%v, %.1f%% cache hits):\n",
		st.Iterations, st.Elapsed, st.CacheHitRate()*100)
	for i, p := range top {
		fmt.Printf("  #%-2d page %5d (domain %3d)  rank %.3f\n",
			i+1, p.Vertex, int(p.Vertex)/domainSize, p.Value)
	}

	// Weak connectivity of the crawl.
	wcc := flashgraph.NewWCC()
	st2, err := eng.Run(wcc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconnectivity: %d weakly connected components (%v)\n",
		wcc.NumComponents(), st2.Elapsed)
	fmt.Printf("io: %s read over %d device requests, merged from %d edge requests\n",
		humanBytes(st2.BytesRead), st2.DeviceReads, st2.EdgeRequests)
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
