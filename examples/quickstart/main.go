// Quickstart: build a small graph, open a semi-external-memory engine
// (simulated SSD array + SAFS + page cache), and run BFS — the paper's
// Figure 4 program — plus PageRank through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flashgraph"
)

func main() {
	// A small directed graph: two communities bridged by vertex 4.
	edges := []flashgraph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, // triangle A
		{Src: 2, Dst: 4}, {Src: 4, Dst: 5}, // bridge
		{Src: 5, Dst: 6}, {Src: 6, Dst: 7}, {Src: 7, Dst: 5}, // triangle B
		{Src: 3, Dst: 0}, // a pendant
	}
	g := flashgraph.NewGraph(8, edges, flashgraph.Directed)
	fmt.Printf("graph: %d vertices, %d edges, %s on SSD, %s index in RAM\n",
		g.NumVertices(), g.NumEdges(), humanBytes(g.SizeBytes()), humanBytes(g.IndexBytes()))

	// Open in semi-external memory: vertex state in RAM, edge lists on
	// the (simulated) SSD array behind the SAFS page cache.
	eng, err := flashgraph.Open(g, flashgraph.Options{Threads: 2, CacheBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// BFS from vertex 0 (the paper's running example).
	bfs := flashgraph.NewBFS(0)
	st, err := eng.Run(bfs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBFS from 0 finished in %v (%d iterations):\n", st.Elapsed, st.Iterations)
	for v, l := range bfs.Level {
		fmt.Printf("  vertex %d: level %d\n", v, l)
	}

	// PageRank on the same engine: the image stays loaded, the paper's
	// single-image-for-all-algorithms design.
	pr := flashgraph.NewPageRank()
	if _, err := eng.Run(pr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPageRank (damping %.2f, %d iterations max):\n", pr.Damping, pr.Iters)
	for v, s := range pr.Scores {
		fmt.Printf("  vertex %d: %.4f\n", v, s)
	}
}

func humanBytes(n int64) string {
	if n < 1024 {
		return fmt.Sprintf("%dB", n)
	}
	return fmt.Sprintf("%.1fKB", float64(n)/1024)
}
