// Custom: a user-defined vertex program — label-propagation community
// detection, registered as "communities" (the stock registry ships its
// own "labelprop") — written purely against the public flashgraph
// package, registered through the capability-typed AlgorithmSpec
// registry, and served over HTTP next to the built-ins. This is the
// paper's headline claim exercised end to end: FlashGraph is a
// *programming interface*, so the serving stack must run arbitrary
// vertex programs, not a fixed algorithm menu.
//
//	go run ./examples/custom
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"flashgraph"
)

// LabelProp is synchronous label propagation: every vertex starts in
// its own community (label = own ID) and repeatedly adopts the most
// frequent label among the labels its neighbors pushed last iteration
// (ties break to the smaller label, so the result is deterministic
// regardless of message delivery order). Vertices whose label did not
// change push nothing, so the computation — like the paper's
// algorithms — touches less I/O every iteration as communities settle.
type LabelProp struct {
	// Iters caps iterations (label propagation may oscillate forever
	// on bipartite structures; default 10).
	Iters int
	// Labels[v] is v's community after the run.
	Labels []uint32

	counts []map[uint32]int32 // labels heard this iteration, per vertex
}

// MaxIterations implements the engine's iteration cap.
func (lp *LabelProp) MaxIterations() int { return lp.Iters }

// Init implements flashgraph.Algorithm: everyone is their own
// community and everyone announces it.
func (lp *LabelProp) Init(eng flashgraph.RunContext) {
	n := eng.NumVertices()
	lp.Labels = make([]uint32, n)
	lp.counts = make([]map[uint32]int32, n)
	for v := range lp.Labels {
		lp.Labels[v] = uint32(v)
	}
	eng.ActivateAllSeeds()
}

// Run implements flashgraph.Algorithm: adopt the most frequent
// neighbor label; if it changed (or this is the first iteration),
// request our edge list to push the label onward.
func (lp *LabelProp) Run(ctx *flashgraph.Ctx, v flashgraph.VertexID) {
	changed := ctx.Iteration() == 0
	if heard := lp.counts[v]; len(heard) > 0 {
		// The current label gets one sticky self-vote: it damps the
		// two-label oscillation synchronous label propagation is prone
		// to, without affecting determinism.
		best, bestN := lp.Labels[v], int32(1)
		for lbl, n := range heard {
			if n > bestN || (n == bestN && lbl < best) {
				best, bestN = lbl, n
			}
		}
		lp.counts[v] = nil
		if best != lp.Labels[v] {
			lp.Labels[v] = best
			changed = true
		}
	}
	if changed && ctx.OutDegree(v) > 0 {
		ctx.RequestSelf(flashgraph.OutEdges)
	}
}

// RunOnVertex implements flashgraph.Algorithm: multicast our label to
// every neighbor (the same value goes to all of them — the multicast
// case the paper optimizes).
func (lp *LabelProp) RunOnVertex(ctx *flashgraph.Ctx, v flashgraph.VertexID, pv *flashgraph.PageVertex) {
	n := pv.NumEdges()
	if n == 0 {
		return
	}
	targets := pv.Edges(make([]flashgraph.VertexID, 0, n), nil) // streaming decode
	ctx.Multicast(targets, flashgraph.Message{I64: int64(lp.Labels[v])})
}

// RunOnMessage implements flashgraph.Algorithm: count the label and
// wake up to re-decide next iteration. Messages for a vertex arrive on
// its owner thread, so the per-vertex count map needs no locking.
func (lp *LabelProp) RunOnMessage(ctx *flashgraph.Ctx, v flashgraph.VertexID, msg flashgraph.Message) {
	if lp.counts[v] == nil {
		lp.counts[v] = make(map[uint32]int32, 4)
	}
	lp.counts[v][uint32(msg.I64)]++
	ctx.Activate(v)
}

// Result implements the typed result contract: the community vector
// plus a community count, checksummed like every built-in result.
func (lp *LabelProp) Result() *flashgraph.ResultSet {
	rs := flashgraph.NewResultSet("communities")
	distinct := map[uint32]bool{}
	for _, l := range lp.Labels {
		distinct[l] = true
	}
	rs.AddScalar("communities", len(distinct))
	rs.AddUint32("community", lp.Labels)
	return rs
}

// labelPropParams is the algorithm's typed parameter struct; the
// registry serves its schema at GET /algos and DecodeParams rejects
// requests that do not match it, naming the offending field.
type labelPropParams struct {
	Iters int `json:"iters" doc:"iteration cap for label propagation" default:"10"`
}

// spec is everything the serving stack needs to run LabelProp:
// registration is the whole integration.
var spec = flashgraph.AlgorithmSpec{
	Name:   "communities",
	Doc:    "label-propagation community detection; community vector + communities scalar",
	Params: labelPropParams{},
	New: func(raw json.RawMessage, g flashgraph.GraphMeta) (flashgraph.Program, error) {
		var p labelPropParams
		if err := flashgraph.DecodeParams(raw, &p); err != nil {
			return nil, err
		}
		if p.Iters < 0 {
			return nil, fmt.Errorf("iters must be >= 0, got %d", p.Iters)
		}
		if p.Iters == 0 {
			p.Iters = 10
		}
		return &LabelProp{Iters: p.Iters}, nil
	},
}

func main() {
	// Publish the algorithm process-wide: every server constructed from
	// here on — including an fg-serve daemon embedding this package —
	// can run it.
	if err := flashgraph.Register(spec); err != nil {
		log.Fatal(err)
	}

	// A planted-partition graph: dense rings-with-chords communities
	// joined by single weak bridges — ground truth for label
	// propagation to recover.
	const domains, domainSize = 16, 48
	var edges []flashgraph.Edge
	base := func(d int) flashgraph.VertexID { return flashgraph.VertexID(d % domains * domainSize) }
	for d := 0; d < domains; d++ {
		for i := 0; i < domainSize; i++ {
			for _, s := range []int{1, 2, 5} { // ring + chords: diameter ~domainSize/5
				edges = append(edges, flashgraph.Edge{
					Src: base(d) + flashgraph.VertexID(i),
					Dst: base(d) + flashgraph.VertexID((i+s)%domainSize),
				})
			}
		}
		edges = append(edges, flashgraph.Edge{Src: base(d), Dst: base(d + 1)}) // weak bridge
	}
	g := flashgraph.NewGraph(domains*domainSize, edges, flashgraph.Undirected)
	cat := flashgraph.NewCatalog(flashgraph.Options{Threads: 4, CacheBytes: 2 << 20})
	defer cat.Close()
	if _, err := cat.Add("web", g); err != nil {
		log.Fatal(err)
	}
	srv, err := flashgraph.NewServer(cat, flashgraph.ServerConfig{MaxConcurrent: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Serve the full fg-serve HTTP surface and talk to it as a client
	// would (httptest picks a free port; http.ListenAndServe works the
	// same way for a real daemon).
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The registry lists the custom algorithm next to the built-ins,
	// with its doc, capability requirements, and param schema.
	var algos []flashgraph.AlgoInfo
	mustGetJSON(ts.URL+"/algos", &algos)
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
		if a.Name == "communities" {
			fmt.Printf("GET /algos -> %s: %q params %v\n", a.Name, a.Doc, a.Params)
		}
	}
	fmt.Printf("registry: %s\n\n", strings.Join(names, " "))

	// Run it over HTTP with its own typed params.
	resp, err := http.Post(ts.URL+"/queries", "application/json",
		strings.NewReader(`{"version":1,"graph":"web","algo":"communities","params":{"iters":20}}`))
	if err != nil {
		log.Fatal(err)
	}
	var q struct {
		ID int64 `json:"id"`
	}
	decodeBody(resp, &q)
	var done map[string]any
	mustGetJSON(fmt.Sprintf("%s/queries/%d?wait=1", ts.URL, q.ID), &done)
	result := done["result"].(map[string]any)
	fmt.Printf("communities on %d vertices / %d edges: %v communities across %d planted domains (checksum %v)\n",
		g.NumVertices(), g.NumEdges(), result["communities"], domains, result["checksum"])

	// The typed result endpoints work on it like on any built-in. The
	// histogram (one bin per planted domain) shows every community
	// stays inside its domain: each bin holds exactly domainSize
	// vertices, so no label leaked across a bridge.
	var hist struct {
		Counts []int64 `json:"counts"`
	}
	mustGetJSON(fmt.Sprintf("%s/queries/%d/result/histogram?bins=%d&vector=community", ts.URL, q.ID, domains), &hist)
	fmt.Printf("labels per domain-aligned bin (want %d each): %v\n\n", domainSize, hist.Counts)

	// Strict typed params: a wrong field fails with the accepted list.
	resp, err = http.Post(ts.URL+"/queries", "application/json",
		strings.NewReader(`{"algo":"communities","params":{"rounds":5}}`))
	if err != nil {
		log.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	decodeBody(resp, &e)
	fmt.Printf("bad params -> %d: %s\n", resp.StatusCode, e.Error)
}

func mustGetJSON(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decodeBody(resp, into)
}

func decodeBody(resp *http.Response, into any) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(body, into); err != nil {
		log.Fatalf("bad response %s: %v", body, err)
	}
}
