// Catalog: serve multiple named graphs from ONE shared substrate — a
// single SAFS instance, page cache, and simulated SSD array — and query
// them through the public Server and its typed result API, the way
// fg-serve does over HTTP.
//
//	go run ./examples/catalog
package main

import (
	"fmt"
	"log"

	"flashgraph"
)

func main() {
	// Two graphs, one substrate: a social-style RMAT graph and a
	// web-style clustered crawl share the page cache and SSD array.
	cat := flashgraph.NewCatalog(flashgraph.Options{Threads: 4, CacheBytes: 4 << 20})
	defer cat.Close()

	social := flashgraph.NewGraph(1<<12, flashgraph.GenerateRMAT(12, 12, 7), flashgraph.Directed)
	web := flashgraph.NewGraph(64*64, flashgraph.GenerateClustered(64, 64, 8, 7), flashgraph.Directed)
	if _, err := cat.Add("social", social); err != nil {
		log.Fatal(err)
	}
	if _, err := cat.Add("web", web); err != nil {
		log.Fatal(err)
	}

	// The public server routes requests by graph name — exactly what
	// fg-serve exposes at POST /queries (srv.Handler() is that HTTP
	// surface, if you want it).
	srv, err := flashgraph.NewServer(cat, flashgraph.ServerConfig{MaxConcurrent: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	for _, graphName := range []string{"social", "web"} {
		id, err := srv.Submit(flashgraph.Request{
			Version: flashgraph.RequestVersion,
			Graph:   graphName,
			Algo:    "pagerank",
		})
		if err != nil {
			log.Fatal(err)
		}
		q, err := srv.Wait(id)
		if err != nil {
			log.Fatal(err)
		}
		if q.State != flashgraph.QueryDone {
			log.Fatalf("%s query failed: %s", graphName, q.Error)
		}

		// Typed result queries: point lookup and paginated top-K.
		top, err := srv.TopK(id, "score", 3, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (query %d, %v):\n", graphName, id, q.Stats.Elapsed)
		for i, e := range top {
			fmt.Printf("  #%d vertex %5d  rank %.4f\n", i+1, e.Vertex, e.Value)
		}
		at, err := srv.Lookup(id, "score", 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  score[0] = %.4f  checksum %s\n", at.Value, q.Result["checksum"])
	}

	cs := cat.FS().Cache().Stats()
	fmt.Printf("\nshared cache across both graphs: %.1f%% hit rate (%d hits, %d misses)\n",
		cs.HitRate()*100, cs.Hits, cs.Misses)
}
