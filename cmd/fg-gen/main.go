// Command fg-gen generates synthetic graph edge lists (text, one
// "src dst" per line) with the generators used for the paper's dataset
// stand-ins.
//
// Usage:
//
//	fg-gen -kind rmat -scale 16 -epv 16 -seed 1 -out twitter.el
//	fg-gen -kind clustered -domains 512 -domain-size 96 -epv 12 -out page.el
//	fg-gen -kind er -n 100000 -m 1000000 -out uniform.el
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"flashgraph/internal/gen"
	"flashgraph/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fg-gen: ")
	var (
		kind       = flag.String("kind", "rmat", "generator: rmat | er | clustered | ring | grid")
		scale      = flag.Int("scale", 14, "rmat: log2 of vertex count")
		epv        = flag.Int("epv", 16, "edges per vertex (rmat, clustered)")
		n          = flag.Int("n", 1<<14, "er/ring: vertex count")
		m          = flag.Int("m", 1<<18, "er: edge count")
		domains    = flag.Int("domains", 256, "clustered: number of domains")
		domainSize = flag.Int("domain-size", 96, "clustered: vertices per domain")
		rows       = flag.Int("rows", 128, "grid: rows")
		cols       = flag.Int("cols", 128, "grid: cols")
		chords     = flag.Int("chords", 0, "ring: extra shortcut edges")
		seed       = flag.Uint64("seed", 1, "generator seed")
		out        = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	var edges []graph.Edge
	switch *kind {
	case "rmat":
		edges = gen.RMAT(*scale, *epv, *seed)
	case "er":
		edges = gen.ER(*n, *m, *seed)
	case "clustered":
		edges = gen.Clustered(gen.ClusteredConfig{
			Domains:        *domains,
			DomainSize:     *domainSize,
			EdgesPerVertex: *epv,
			Seed:           *seed,
		})
	case "ring":
		edges = gen.Ring(*n, *chords, *seed)
	case "grid":
		edges = gen.Grid(*rows, *cols)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, edges); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fg-gen: wrote %d edges\n", len(edges))
}
