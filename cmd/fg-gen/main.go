// Command fg-gen generates synthetic graphs with the generators used
// for the paper's dataset stand-ins. Edges stream from the generator
// to the output one at a time — the tool never holds an edge list —
// so billion-edge outputs need only the -mem build budget.
//
// Two output forms:
//
//	fg-gen -kind rmat -scale 16 -epv 16 -out twitter.el        # text edge list
//	fg-gen -kind rmat -scale 24 -epv 16 -image twitter.fg      # FlashGraph image, built
//	fg-gen -kind clustered -domains 512 -epv 12 -image page.fg #   out-of-core under -mem
//	fg-gen -kind er -n 100000 -m 1000000 -out uniform.el
//
// On completion the tool reports elapsed time, edges/sec, and (for
// -image) the builder's peak memory — the Table 2 "init time"
// numbers, now observable.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flashgraph"
	"flashgraph/internal/gen"
	"flashgraph/internal/graph"
	"flashgraph/internal/util"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fg-gen: ")
	var (
		kind       = flag.String("kind", "rmat", "generator: rmat | er | clustered | ring | grid")
		scale      = flag.Int("scale", 14, "rmat: log2 of vertex count")
		epv        = flag.Int("epv", 16, "edges per vertex (rmat, clustered)")
		n          = flag.Int("n", 1<<14, "er/ring: vertex count")
		m          = flag.Int("m", 1<<18, "er: edge count")
		domains    = flag.Int("domains", 256, "clustered: number of domains")
		domainSize = flag.Int("domain-size", 96, "clustered: vertices per domain")
		rows       = flag.Int("rows", 128, "grid: rows")
		cols       = flag.Int("cols", 128, "grid: cols")
		chords     = flag.Int("chords", 0, "ring: extra shortcut edges")
		seed       = flag.Uint64("seed", 1, "generator seed")
		out        = flag.String("out", "", "text edge-list output path (default stdout)")
		image      = flag.String("image", "", "build a FlashGraph image directly at this path instead of text")
		undirected = flag.Bool("undirected", false, "image: treat edges as undirected")
		encoding   = flag.String("encoding", "raw", "image: edge-list layout, raw | delta | block (delta stores sorted neighbor IDs as varint gaps; block is the 2D edge-block layout for the SpMV engine)")
		memMB      = flag.Int64("mem", 256, "image: builder memory budget (MiB)")
		tmpDir     = flag.String("tmp", "", "image: directory for spilled sort runs")
	)
	flag.Parse()
	enc, err := flashgraph.ParseEncoding(*encoding)
	if err != nil {
		log.Fatal(err)
	}

	var source flashgraph.EdgeSource
	switch *kind {
	case "rmat":
		source = func(emit func(graph.Edge) error) error {
			return gen.RMATStream(*scale, *epv, *seed, emit)
		}
	case "er":
		source = func(emit func(graph.Edge) error) error {
			return gen.ERStream(*n, *m, *seed, emit)
		}
	case "clustered":
		source = func(emit func(graph.Edge) error) error {
			return gen.ClusteredStream(gen.ClusteredConfig{
				Domains:        *domains,
				DomainSize:     *domainSize,
				EdgesPerVertex: *epv,
				Seed:           *seed,
			}, emit)
		}
	case "ring":
		source = func(emit func(graph.Edge) error) error {
			return gen.RingStream(*n, *chords, *seed, emit)
		}
	case "grid":
		source = func(emit func(graph.Edge) error) error {
			return gen.GridStream(*rows, *cols, emit)
		}
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	if *image != "" {
		st, err := flashgraph.BuildGraphFile(*image, source, flashgraph.BuildOptions{
			Directed: !*undirected,
			Encoding: enc,
			MemBytes: *memMB << 20,
			TmpDir:   *tmpDir,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr,
			"fg-gen: image %s: %s vertices, %s edges, %s on SSD, built in %v (%.0f edges/s), peak builder memory %s, %d spilled runs\n",
			*image,
			util.HumanCount(int64(st.NumV)),
			util.HumanCount(st.NumEdges),
			util.HumanBytes(st.DataBytes),
			st.Elapsed.Round(time.Millisecond),
			st.EdgesPerSec(),
			util.HumanBytes(st.PeakMemBytes),
			st.Spills,
		)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	start := time.Now()
	var count int64
	if err := source(func(e graph.Edge) error {
		count++
		_, err := fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	eps := float64(count) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "fg-gen: wrote %d edges in %v (%.0f edges/s)\n",
		count, elapsed.Round(time.Millisecond), eps)
}
