// Command fg-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured notes).
//
// Usage:
//
//	fg-bench                  # everything, default scale
//	fg-bench -exp fig8        # one experiment
//	fg-bench -scale-add 2     # 4x larger datasets
//	fg-bench -no-throttle     # devices at memory speed (fast smoke)
//
// The concurrent multi-query driver (not a paper figure; a
// FalkorDB-benchmark-style workload generator) measures query latency
// under concurrency over ONE shared SAFS instance:
//
//	fg-bench -exp concurrent -clients 8 -requests 48 -max-concurrent 4
//	fg-bench -exp concurrent -qps 10 -mix bfs,pagerank,wcc,tc
//	fg-bench -exp encoding    # raw vs delta edge lists → BENCH_encoding.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"flashgraph/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fg-bench: ")
	var (
		exp        = flag.String("exp", "all", "all | table1 | fig8 | fig9 | fig10 | fig11 | table2 | fig12 | fig13 | fig14 | ablations | concurrent | serving | ingest | encoding | spmv | io | chaos")
		scaleAdd   = flag.Int("scale-add", 0, "log2 dataset scale adjustment")
		threads    = flag.Int("threads", 8, "engine worker threads")
		noThrottle = flag.Bool("no-throttle", false, "disable device timing")
		seed       = flag.Uint64("seed", 0, "generator seed offset")

		// -exp concurrent knobs (FalkorDB-benchmark-style driver).
		clients       = flag.Int("clients", 8, "concurrent: client worker-pool size")
		requests      = flag.Int("requests", 48, "concurrent: total queries")
		qps           = flag.Float64("qps", 0, "concurrent: target aggregate qps (0 = closed loop)")
		maxConcurrent = flag.Int("max-concurrent", 4, "concurrent: scheduler slots")
		mix           = flag.String("mix", "bfs,pagerank,wcc", "concurrent: comma-separated algorithm rotation")

		// -exp serving knobs (serving-QoS acceptance gauge, grown out of
		// -exp concurrent: priority classes, result cache, quotas).
		servInteractive = flag.Int("serving-interactive", 0, "serving: interactive probes per phase (0 = default 8)")
		servBatch       = flag.Int("serving-batch", 0, "serving: background batch queries per phase (0 = default 10)")
		servBatchIters  = flag.Int("serving-batch-iters", 0, "serving: pagerank sweeps per batch query (0 = default 24)")
		servSlots       = flag.Int("serving-slots", 0, "serving: scheduler slots (0 = default 4)")
		servJSON        = flag.String("serving-json", "BENCH_serving.json", "serving: machine-readable output path")

		// -exp ingest knobs (streaming image construction).
		ingestScale = flag.Int("ingest-scale", 0, "ingest: RMAT log2 vertex count (0 = bench default)")
		ingestEPV   = flag.Int("ingest-epv", 0, "ingest: edges per vertex (0 = default 16)")
		ingestJSON  = flag.String("ingest-json", "BENCH_ingest.json", "ingest: machine-readable output path")

		// -exp encoding knobs (raw vs delta edge-list layouts).
		encScale   = flag.Int("encoding-scale", 0, "encoding: RMAT log2 vertex count (0 = default 20)")
		encEPV     = flag.Int("encoding-epv", 0, "encoding: edges per vertex (0 = default 16)")
		encCacheMB = flag.Int64("encoding-cache", 0, "encoding: serving page cache MiB (0 = default 64)")
		encJSON    = flag.String("encoding-json", "BENCH_encoding.json", "encoding: machine-readable output path")

		// -exp io knobs (raw I/O path: decode CPU + submission shape).
		ioScale    = flag.Int("io-scale", 0, "io: RMAT log2 vertex count (0 = default 20)")
		ioEPV      = flag.Int("io-epv", 0, "io: edges per vertex (0 = default 16)")
		ioCacheMB  = flag.Int64("io-cache", 0, "io: SAFS page cache MiB (0 = default 64)")
		ioIters    = flag.Int("io-iters", 0, "io: full-sweep PageRank iterations (0 = default 30)")
		ioDecodeMB = flag.Int64("io-decode-cache", 0, "io: decoded-record cache MiB for the new-path variant (0 = default 64)")
		ioMinDeg   = flag.Uint("io-decode-min-degree", 0, "io: decode-cache admission degree (0 = default 64)")
		ioDirect   = flag.Bool("io-direct", false, "io: open device files with O_DIRECT where supported")
		ioJSON     = flag.String("io-json", "BENCH_io.json", "io: machine-readable output path")

		// -exp chaos knobs (fault-tolerance acceptance gauge).
		chaosProbes = flag.Int("chaos-probes", 0, "chaos: interactive bfs probes per phase (0 = default 6)")
		chaosSweeps = flag.Int("chaos-sweeps", 0, "chaos: pagerank sweeps per phase (0 = default 2)")
		chaosSeed   = flag.Uint64("chaos-seed", 0, "chaos: fault-injection seed (0 = default 1)")
		chaosJSON   = flag.String("chaos-json", "BENCH_chaos.json", "chaos: machine-readable output path")

		// -exp spmv knobs (execution-engine crossover).
		spmvScale   = flag.Int("spmv-scale", 0, "spmv: RMAT log2 vertex count (0 = default 20)")
		spmvEPV     = flag.Int("spmv-epv", 0, "spmv: edges per vertex (0 = default 16)")
		spmvCacheMB = flag.Int64("spmv-cache", 0, "spmv: vertex-engine page cache MiB (0 = default 64)")
		spmvIters   = flag.Int("spmv-iters", 0, "spmv: PageRank sweep count (0 = default 30)")
		spmvJSON    = flag.String("spmv-json", "BENCH_spmv.json", "spmv: machine-readable output path")
	)
	flag.Parse()

	cfg := bench.Config{
		ScaleAdd:   *scaleAdd,
		Threads:    *threads,
		NoThrottle: *noThrottle,
		Seed:       *seed,
	}
	start := time.Now()
	w := os.Stdout
	switch *exp {
	case "all":
		bench.RunAll(cfg, w)
	case "table1":
		bench.Table1(cfg, w)
	case "fig8":
		bench.Fig8(cfg, w)
	case "fig9":
		bench.Fig9(cfg, w)
	case "fig10":
		bench.Fig10(cfg, w)
	case "fig11":
		bench.Fig11(cfg, w)
	case "table2":
		bench.Table2(cfg, w)
	case "fig12":
		bench.Fig12(cfg, w)
	case "fig13":
		bench.Fig13(cfg, w)
	case "fig14":
		bench.Fig14(cfg, w)
	case "ablations":
		bench.Ablations(cfg, w)
	case "ingest":
		bench.Ingest(cfg, bench.IngestConfig{
			Scale:    *ingestScale,
			EPV:      *ingestEPV,
			JSONPath: *ingestJSON,
		}, w)
	case "encoding":
		bench.EncodingExp(cfg, bench.EncodingConfig{
			Scale:    *encScale,
			EPV:      *encEPV,
			CacheMB:  *encCacheMB,
			JSONPath: *encJSON,
		}, w)
	case "io":
		bench.IOExp(cfg, bench.IOConfig{
			Scale:           *ioScale,
			EPV:             *ioEPV,
			CacheMB:         *ioCacheMB,
			Iters:           *ioIters,
			DecodeCacheMB:   *ioDecodeMB,
			DecodeMinDegree: uint32(*ioMinDeg),
			Direct:          *ioDirect,
			JSONPath:        *ioJSON,
		}, w)
	case "spmv":
		bench.SpMVExp(cfg, bench.SpMVConfig{
			Scale:    *spmvScale,
			EPV:      *spmvEPV,
			CacheMB:  *spmvCacheMB,
			Iters:    *spmvIters,
			JSONPath: *spmvJSON,
		}, w)
	case "serving":
		bench.Serving(cfg, bench.ServingConfig{
			Interactive: *servInteractive,
			Batch:       *servBatch,
			BatchIters:  *servBatchIters,
			Slots:       *servSlots,
			JSONPath:    *servJSON,
		}, w)
	case "chaos":
		bench.Chaos(cfg, bench.ChaosConfig{
			Probes:    *chaosProbes,
			Sweeps:    *chaosSweeps,
			FaultSeed: *chaosSeed,
			JSONPath:  *chaosJSON,
		}, w)
	case "concurrent":
		bench.Concurrent(cfg, bench.ConcurrentConfig{
			Clients:       *clients,
			Requests:      *requests,
			QPS:           *qps,
			MaxConcurrent: *maxConcurrent,
			Mix:           strings.Split(*mix, ","),
		}, w)
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
	fmt.Fprintf(os.Stderr, "fg-bench: done in %v\n", time.Since(start).Round(time.Millisecond))
}
