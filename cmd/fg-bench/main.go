// Command fg-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured notes).
//
// Usage:
//
//	fg-bench                  # everything, default scale
//	fg-bench -exp fig8        # one experiment
//	fg-bench -scale-add 2     # 4x larger datasets
//	fg-bench -no-throttle     # devices at memory speed (fast smoke)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flashgraph/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fg-bench: ")
	var (
		exp        = flag.String("exp", "all", "all | table1 | fig8 | fig9 | fig10 | fig11 | table2 | fig12 | fig13 | fig14 | ablations")
		scaleAdd   = flag.Int("scale-add", 0, "log2 dataset scale adjustment")
		threads    = flag.Int("threads", 8, "engine worker threads")
		noThrottle = flag.Bool("no-throttle", false, "disable device timing")
		seed       = flag.Uint64("seed", 0, "generator seed offset")
	)
	flag.Parse()

	cfg := bench.Config{
		ScaleAdd:   *scaleAdd,
		Threads:    *threads,
		NoThrottle: *noThrottle,
		Seed:       *seed,
	}
	start := time.Now()
	w := os.Stdout
	switch *exp {
	case "all":
		bench.RunAll(cfg, w)
	case "table1":
		bench.Table1(cfg, w)
	case "fig8":
		bench.Fig8(cfg, w)
	case "fig9":
		bench.Fig9(cfg, w)
	case "fig10":
		bench.Fig10(cfg, w)
	case "fig11":
		bench.Fig11(cfg, w)
	case "table2":
		bench.Table2(cfg, w)
	case "fig12":
		bench.Fig12(cfg, w)
	case "fig13":
		bench.Fig13(cfg, w)
	case "fig14":
		bench.Fig14(cfg, w)
	case "ablations":
		bench.Ablations(cfg, w)
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
	fmt.Fprintf(os.Stderr, "fg-bench: done in %v\n", time.Since(start).Round(time.Millisecond))
}
