// Command fg-run executes a graph algorithm over a FlashGraph image in
// semi-external memory (simulated SSD array) or in-memory mode and
// prints run statistics.
//
// Usage:
//
//	fg-run -graph twitter.fg -algo bfs
//	fg-run -graph twitter.fg -algo pagerank -cache-mb 64 -threads 16
//	fg-run -graph twitter.fg -algo scanstat        # custom scheduler
//	fg-run -graph roads.fg  -algo sssp -src 0      # weighted image
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"flashgraph"
	"flashgraph/internal/core"
	"flashgraph/internal/util"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fg-run: ")
	var (
		graphPath = flag.String("graph", "", "FlashGraph image (fg-convert output)")
		algoName  = flag.String("algo", "bfs", "bfs | bc | wcc | pagerank | tc | scanstat | kcore | sssp")
		src       = flag.Int("src", -1, "source vertex (default: highest out-degree)")
		k         = flag.Int("k", 3, "k for kcore")
		inMemory  = flag.Bool("mem", false, "in-memory mode (FG-mem)")
		cacheMB   = flag.Int64("cache-mb", 64, "SAFS page cache size (MiB)")
		threads   = flag.Int("threads", 8, "worker threads")
		throttle  = flag.Bool("throttle", true, "realistic SSD timing")
	)
	flag.Parse()
	if *graphPath == "" {
		log.Fatal("need -graph (build one with fg-gen | fg-convert)")
	}

	g, err := flashgraph.LoadFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	source := flashgraph.VertexID(*src)
	if *src < 0 {
		source = hubVertex(g)
	}

	opts := flashgraph.Options{
		InMemory:   *inMemory,
		Threads:    *threads,
		CacheBytes: *cacheMB << 20,
		Throttle:   *throttle,
	}
	if *algoName == "scanstat" {
		opts.Engine = &core.Config{Threads: *threads, Sched: core.SchedCustom, MaxRunning: 512}
	}
	eng, err := flashgraph.Open(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	var alg flashgraph.Algorithm
	report := func() {}
	switch *algoName {
	case "bfs":
		a := flashgraph.NewBFS(source)
		alg = a
		report = func() {
			fmt.Printf("bfs: reached %d of %d vertices from %d\n", a.Reached(), g.NumVertices(), source)
		}
	case "bc":
		a := flashgraph.NewBC(source)
		alg = a
		report = func() {
			best, arg := 0.0, flashgraph.VertexID(0)
			for v, c := range a.Centrality {
				if c > best {
					best, arg = c, flashgraph.VertexID(v)
				}
			}
			fmt.Printf("bc: max dependency %.2f at vertex %d\n", best, arg)
		}
	case "wcc":
		a := flashgraph.NewWCC()
		alg = a
		report = func() {
			fmt.Printf("wcc: %d weakly connected components\n", a.NumComponents())
		}
	case "pagerank":
		a := flashgraph.NewPageRank()
		alg = a
		report = func() {
			type vp struct {
				v flashgraph.VertexID
				p float64
			}
			top := make([]vp, 0, len(a.Scores))
			for v, p := range a.Scores {
				top = append(top, vp{flashgraph.VertexID(v), p})
			}
			sort.Slice(top, func(i, j int) bool { return top[i].p > top[j].p })
			fmt.Printf("pagerank: top vertices:")
			for i := 0; i < 5 && i < len(top); i++ {
				fmt.Printf(" %d(%.3f)", top[i].v, top[i].p)
			}
			fmt.Println()
		}
	case "tc":
		a := flashgraph.NewTriangleCount()
		alg = a
		report = func() {
			fmt.Printf("tc: %d triangles\n", a.Total)
		}
	case "scanstat":
		a := flashgraph.NewScanStat()
		alg = a
		report = func() {
			fmt.Printf("scanstat: max locality statistic %d at vertex %d (computed %d, pruned %d)\n",
				a.Max, a.ArgMax, a.Computed, a.Skipped)
		}
	case "kcore":
		a := flashgraph.NewKCore(*k)
		alg = a
		report = func() {
			fmt.Printf("kcore: %d vertices in the %d-core\n", a.CoreSize(), *k)
		}
	case "sssp":
		a := flashgraph.NewSSSP(source)
		alg = a
		report = func() {
			reached := 0
			for _, d := range a.Dist {
				if d != flashgraph.Unreachable {
					reached++
				}
			}
			fmt.Printf("sssp: %d vertices reachable from %d\n", reached, source)
		}
	default:
		log.Fatalf("unknown algorithm %q", *algoName)
	}

	st, err := eng.Run(alg)
	if err != nil {
		log.Fatal(err)
	}
	report()
	fmt.Printf("elapsed      %v (%d iterations)\n", st.Elapsed, st.Iterations)
	if !*inMemory {
		fmt.Printf("io           %s read, %d device reads (%.0f IOPS), %d merged requests from %d edge requests\n",
			util.HumanBytes(st.BytesRead), st.DeviceReads, st.IOPS(), st.MergedRequests, st.EdgeRequests)
		fmt.Printf("cache        %.1f%% hit rate\n", st.CacheHitRate()*100)
	}
	fmt.Printf("cpu          %.1f%% utilization, %v waiting on I/O\n", st.CPUUtil*100, st.WaitTime)
	fmt.Printf("memory       %s estimated footprint\n", util.HumanBytes(st.MemoryBytes))
	_ = os.Stdout
}

// hubVertex picks the highest-out-degree vertex.
func hubVertex(g *flashgraph.Graph) flashgraph.VertexID {
	best := flashgraph.VertexID(0)
	var bestDeg uint32
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(flashgraph.VertexID(v)); d > bestDeg {
			bestDeg = d
			best = flashgraph.VertexID(v)
		}
	}
	return best
}
