// Command fg-serve runs a FlashGraph query daemon: one graph loaded
// into one shared semi-external-memory substrate (SAFS instance, page
// cache, simulated SSD array), serving many algorithm queries
// concurrently with admission control.
//
// Usage:
//
//	fg-serve -graph twitter.fg                     # serve an image
//	fg-serve -rmat 14 -epv 16                      # serve a generated graph
//	fg-serve -graph g.fg -max-concurrent 8 -addr :9090
//
// API:
//
//	POST /queries          {"algo":"bfs","src":0}   -> 202 {"id":1,...}
//	GET  /queries          list all queries
//	GET  /queries/{id}     one query: state, stats, result
//	GET  /stats            scheduler + substrate counters
//	GET  /healthz          liveness
//
// Submit returns immediately; poll GET /queries/{id} until "state" is
// "done" (or pass ?wait=1 to block). Algorithms: bfs, pagerank, wcc,
// bc, tc, kcore (undirected images), sssp (weighted images), scanstat.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"flashgraph"
	"flashgraph/internal/serve"
	"flashgraph/internal/util"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fg-serve: ")
	var (
		addr          = flag.String("addr", ":8090", "HTTP listen address")
		graphPath     = flag.String("graph", "", "FlashGraph image (fg-convert output)")
		rmatScale     = flag.Int("rmat", 0, "generate an RMAT graph of 2^scale vertices instead of loading one")
		epv           = flag.Int("epv", 8, "edges per vertex for -rmat")
		seed          = flag.Uint64("seed", 1, "generator seed for -rmat")
		inMemory      = flag.Bool("mem", false, "in-memory mode (FG-mem)")
		cacheMB       = flag.Int64("cache-mb", 64, "SAFS page cache size (MiB)")
		threads       = flag.Int("threads", 8, "worker threads per query")
		devices       = flag.Int("devices", 4, "simulated SSDs")
		throttle      = flag.Bool("throttle", false, "realistic SSD timing")
		maxConcurrent = flag.Int("max-concurrent", 4, "queries executing simultaneously")
		maxQueued     = flag.Int("max-queued", 64, "admitted queries waiting for a slot")
		maxHistory    = flag.Int("max-history", 1024, "finished queries retained for polling")
	)
	flag.Parse()

	var g *flashgraph.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = flashgraph.LoadFile(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
	case *rmatScale > 0:
		g = flashgraph.NewGraph(1<<*rmatScale, flashgraph.GenerateRMAT(*rmatScale, *epv, *seed), flashgraph.Directed)
	default:
		log.Fatal("need -graph or -rmat (build an image with fg-gen | fg-convert)")
	}

	eng, err := flashgraph.Open(g, flashgraph.Options{
		InMemory:   *inMemory,
		Threads:    *threads,
		CacheBytes: *cacheMB << 20,
		Devices:    *devices,
		Throttle:   *throttle,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	srv := serve.New(eng.Shared(), serve.Config{
		MaxConcurrent: *maxConcurrent,
		MaxQueued:     *maxQueued,
		MaxHistory:    *maxHistory,
	})
	defer srv.Close()

	log.Printf("serving graph: %d vertices, %d edges, %s on SSD, %s index",
		g.NumVertices(), g.NumEdges(), util.HumanBytes(g.SizeBytes()), util.HumanBytes(g.IndexBytes()))
	log.Printf("scheduler: %d concurrent slots, queue depth %d; algorithms: %v",
		*maxConcurrent, *maxQueued, serve.Algorithms())
	log.Printf("listening on %s", *addr)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		id, err := srv.Submit(req)
		switch {
		case err == nil:
		case err == serve.ErrQueueFull:
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		default:
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		q, ok := srv.Get(id)
		if !ok {
			// Finished and already evicted from history between Submit
			// and here (tiny -max-history under load): the id is still
			// the authoritative handle.
			writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": "evicted"})
			return
		}
		writeJSON(w, http.StatusAccepted, q)
	})
	mux.HandleFunc("GET /queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.List())
	})
	mux.HandleFunc("GET /queries/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad query id")
			return
		}
		if r.URL.Query().Get("wait") != "" {
			q, err := srv.Wait(id)
			if err != nil {
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, q)
			return
		}
		q, ok := srv.Get(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown query id")
			return
		}
		writeJSON(w, http.StatusOK, q)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		out := map[string]any{
			"scheduler": srv.Stats(),
			"graph": map[string]any{
				"vertices":  g.NumVertices(),
				"edges":     g.NumEdges(),
				"directed":  g.Directed(),
				"ssd_bytes": g.SizeBytes(),
			},
		}
		if fs := eng.Shared().FS(); fs != nil {
			cs := fs.Cache().Stats()
			as := fs.Array().Stats()
			out["cache"] = map[string]any{
				"hits": cs.Hits, "misses": cs.Misses,
				"evictions": cs.Evictions, "bypasses": cs.Bypasses,
				"hit_rate": cs.HitRate(),
			}
			out["array"] = map[string]any{
				"reads": as.Reads, "bytes_read": as.BytesRead,
				"busy_ns": int64(as.Busy),
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	server := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	log.Fatal(server.ListenAndServe())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
