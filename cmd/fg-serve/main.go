// Command fg-serve runs a FlashGraph query daemon: a catalog of named
// graphs loaded into ONE shared semi-external-memory substrate (SAFS
// instance, page cache, simulated SSD array), serving many algorithm
// queries concurrently with admission control and typed, queryable
// results.
//
// In semi-external-memory mode (the default) images are opened
// file-backed: only the container header and compact index enter RAM,
// edge data streams disk → SAFS in chunks and is read back through
// the shared page cache — graphs larger than memory serve normally.
// In-memory mode (-mem, the paper's FG-mem) decodes images fully.
//
// Usage:
//
//	fg-serve -graph twitter.fg                        # serve one image (name = file base)
//	fg-serve -graph social=a.fg -graph web=b.fg       # a multi-graph catalog
//	fg-serve -rmat 14 -epv 16                         # serve a generated graph ("rmat")
//	fg-serve -graph g.fg -max-concurrent 8 -addr :9090
//
// API (the full surface lives in internal/serve's Handler):
//
//	POST /queries   {"version":1,"graph":"social","algo":"bfs","params":{"src":0}} -> 202 {"id":1,...}
//	GET  /queries/{id}                   poll (?wait=1 blocks)
//	GET  /queries/{id}/result            typed summary: scalars, vector metadata, checksum
//	GET  /queries/{id}/result/lookup     ?vertex=V[&vector=name]
//	GET  /queries/{id}/result/topk       ?k=K[&offset=N][&vector=name]
//	GET  /queries/{id}/result/histogram  ?bins=B[&vector=name]
//	GET  /graphs | /algos | /queries | /stats | /healthz
//
// Algorithms come from the open registry (GET /algos lists name, doc,
// capability requirements, and param schema): the built-ins — bfs,
// pagerank, ppagerank, wcc, bc, tc, kcore (undirected images), sssp
// (weighted images), scanstat — plus anything registered through
// flashgraph.Register. The daemon is a thin shell over
// flashgraph.NewServer; embed that to serve custom vertex programs
// (see examples/custom).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"flashgraph"
	"flashgraph/internal/util"
)

// graphSpec is one -graph flag value: "name=path" or bare "path".
type graphSpec struct{ name, path string }

func main() {
	log.SetFlags(0)
	log.SetPrefix("fg-serve: ")
	var specs []graphSpec
	var (
		addr          = flag.String("addr", ":8090", "HTTP listen address")
		rmatScale     = flag.Int("rmat", 0, "also serve a generated RMAT graph of 2^scale vertices")
		rmatName      = flag.String("rmat-name", "rmat", "catalog name for the -rmat graph")
		epv           = flag.Int("epv", 8, "edges per vertex for -rmat")
		seed          = flag.Uint64("seed", 1, "generator seed for -rmat")
		inMemory      = flag.Bool("mem", false, "in-memory mode (FG-mem)")
		cacheMB       = flag.Int64("cache-mb", 64, "SAFS page cache size (MiB), shared by all graphs")
		threads       = flag.Int("threads", 8, "worker threads per query")
		devices       = flag.Int("devices", 4, "simulated SSDs")
		throttle      = flag.Bool("throttle", false, "realistic SSD timing")
		storeDir      = flag.String("store-dir", "", "back the simulated SSD array with files in this directory (one per device)")
		directIO      = flag.Bool("direct", false, "open -store-dir device files with O_DIRECT (raw I/O path, no OS page cache)")
		decodeMB      = flag.Int64("decode-cache-mb", 0, "decoded edge-list cache for hot hubs (MiB, delta images only); 0 disables")
		decodeMinDeg  = flag.Uint("decode-min-degree", 0, "minimum degree for the decoded-record cache (default 64)")
		maxConcurrent = flag.Int("max-concurrent", 4, "queries executing simultaneously")
		maxQueued     = flag.Int("max-queued", 64, "admitted queries waiting for a slot")
		maxHistory    = flag.Int("max-history", 1024, "finished queries retained for polling")
		resultMB      = flag.Int64("result-mb", 64, "byte budget for retained full result vectors (MiB); 0 disables retention")
		qosOn         = flag.Bool("qos", false, "enable the serving-QoS tier: priority classes, result cache, coalescing")
		cacheResMB    = flag.Int64("result-cache-mb", 32, "result cache byte budget (MiB) when -qos is on; 0 disables the cache")
		quotaRate     = flag.Float64("quota-rate", 0, "per-tenant admission rate (queries/sec, token bucket); 0 disables quotas")
		quotaBurst    = flag.Float64("quota-burst", 0, "per-tenant burst capacity; 0 means 4x -quota-rate")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight queries on SIGINT/SIGTERM")
	)
	flag.Func("graph", "FlashGraph image to serve, as name=path or path (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok {
			path = v
			name = strings.TrimSuffix(filepath.Base(v), filepath.Ext(v))
		}
		if name == "" || path == "" {
			return fmt.Errorf("bad -graph %q: want name=path or path", v)
		}
		specs = append(specs, graphSpec{name, path})
		return nil
	})
	flag.Parse()

	cat := flashgraph.NewCatalog(flashgraph.Options{
		InMemory:         *inMemory,
		Threads:          *threads,
		CacheBytes:       *cacheMB << 20,
		Devices:          *devices,
		Throttle:         *throttle,
		StoreDir:         *storeDir,
		DirectIO:         *directIO,
		DecodeCacheBytes: *decodeMB << 20,
		DecodeMinDegree:  uint32(*decodeMinDeg),
	})
	defer cat.Close()

	for _, spec := range specs {
		// Semi-external-memory catalogs serve images file-backed: only
		// the header and compact index enter RAM, edge data streams
		// disk → SAFS and is read back through the shared page cache.
		// In-memory mode (FG-mem) needs the decoded image.
		var eng *flashgraph.Engine
		var err error
		mode := "file-backed"
		if *inMemory {
			mode = "decoded"
			var g *flashgraph.Graph
			if g, err = flashgraph.LoadFile(spec.path); err == nil {
				eng, err = cat.Add(spec.name, g)
			}
		} else {
			eng, err = cat.AddFile(spec.name, spec.path)
		}
		if err != nil {
			log.Fatal(err)
		}
		logGraph(spec.name, mode, eng)
	}
	if *rmatScale > 0 {
		g := flashgraph.NewGraph(1<<*rmatScale, flashgraph.GenerateRMAT(*rmatScale, *epv, *seed), flashgraph.Directed)
		eng, err := cat.Add(*rmatName, g)
		if err != nil {
			log.Fatal(err)
		}
		logGraph(*rmatName, "generated", eng)
	}
	names := cat.Graphs()
	if len(names) == 0 {
		log.Fatal("need at least one -graph or -rmat (build an image with fg-gen | fg-convert)")
	}

	// The first graph is the default route for unqualified requests.
	// -result-mb 0 means "retain nothing" (the config uses 0 as its
	// own default sentinel, so translate to the negative convention).
	resultBytes := *resultMB << 20
	if *resultMB <= 0 {
		resultBytes = -1
	}
	// -result-cache-mb 0 with -qos means "no cache" (the config uses 0
	// as its own default sentinel, so translate to the negative
	// convention, like -result-mb above).
	cacheBytes := *cacheResMB << 20
	if *cacheResMB <= 0 {
		cacheBytes = -1
	}
	// The daemon is the public server, verbatim: the same constructor,
	// registry, and HTTP handler a library embedder gets.
	srv, err := flashgraph.NewServer(cat, flashgraph.ServerConfig{
		MaxConcurrent: *maxConcurrent,
		MaxQueued:     *maxQueued,
		MaxHistory:    *maxHistory,
		ResultBytes:   resultBytes,
		QoS: flashgraph.QoSConfig{
			Enabled:    *qosOn,
			CacheBytes: cacheBytes,
			QuotaRate:  *quotaRate,
			QuotaBurst: *quotaBurst,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	algos := make([]string, 0, len(srv.Algorithms()))
	for _, a := range srv.Algorithms() {
		algos = append(algos, a.Name)
	}
	log.Printf("catalog: %d graphs on one shared substrate (default %q)", len(names), names[0])
	log.Printf("scheduler: %d concurrent slots, queue depth %d, %s result budget; algorithms: %v",
		*maxConcurrent, *maxQueued, util.HumanBytes(*resultMB<<20), algos)
	if *qosOn {
		quota := "quotas off"
		if *quotaRate > 0 {
			quota = fmt.Sprintf("quota %.3g q/s per tenant", *quotaRate)
		}
		log.Printf("qos: priority classes on, %s result cache, %s", util.HumanBytes(cacheBytes), quota)
	}
	if *storeDir != "" {
		mode := "buffered+fadvise"
		if *directIO {
			mode = "O_DIRECT"
		}
		log.Printf("store: %d device files under %s (%s)", *devices, *storeDir, mode)
	}
	log.Printf("listening on %s", *addr)

	server := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}

	// Graceful drain: on SIGINT/SIGTERM stop admitting (Submit answers
	// 503 so load balancers fail over), let in-flight and queued
	// queries finish within -drain-timeout, flush final stats to the
	// log, and exit. A second signal aborts immediately.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("received %v: draining (in-flight queries finish, new submissions get 503)", sig)
	}
	srv.Drain()
	done := make(chan struct{})
	go func() {
		srv.Close() // blocks until queued + running queries finish
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(*drainTimeout):
		log.Printf("drain timed out after %v; exiting with queries in flight", *drainTimeout)
	case sig := <-sigCh:
		log.Printf("received second %v: aborting drain", sig)
	}
	// Stop the HTTP listener after the computation drains: read
	// endpoints (stats, results) answer to the very end.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := server.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	flushStats(srv)
}

// flushStats writes the server's final traffic counters to the log as
// one JSON line — the drain-time flight recorder.
func flushStats(srv *flashgraph.Server) {
	b, err := json.Marshal(srv.Stats())
	if err != nil {
		return
	}
	log.Printf("final stats: %s", b)
}

func logGraph(name, mode string, eng *flashgraph.Engine) {
	img := eng.Shared().Image()
	log.Printf("graph %q (%s): %d vertices, %d edges, %s on SSD, %s index",
		name, mode, img.NumV, img.NumEdges, util.HumanBytes(img.DataSize()), util.HumanBytes(img.IndexMemory()))
}
