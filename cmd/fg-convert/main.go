// Command fg-convert builds a FlashGraph image from a text edge list:
// the compact on-SSD representation (separate ID-sorted in-/out-edge
// list files) plus metadata, in one portable file. The expensive
// construction is amortized: FlashGraph uses a single image for every
// algorithm (§3.5.2).
//
// Usage:
//
//	fg-convert -in twitter.el -out twitter.fg
//	fg-convert -in roads.el -out roads.fg -weights   # 4-byte edge weights
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"

	"flashgraph/internal/graph"
	"flashgraph/internal/util"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fg-convert: ")
	var (
		in         = flag.String("in", "", "input edge list (text)")
		out        = flag.String("out", "", "output image path")
		undirected = flag.Bool("undirected", false, "treat edges as undirected")
		weights    = flag.Bool("weights", false, "attach deterministic 4-byte edge weights (SSSP demos)")
		keepDupes  = flag.Bool("keep-duplicates", false, "keep duplicate edges and self loops")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		log.Fatal("need -in and -out")
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	edges, n, err := graph.ParseEdgeList(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	a := graph.FromEdges(n, edges, !*undirected)
	if !*keepDupes {
		a.Dedup()
	}

	attrSize := 0
	var attr graph.AttrFunc
	if *weights {
		attrSize = 4
		attr = func(src, dst graph.VertexID, buf []byte) {
			w := (uint32(src)*2654435761 ^ uint32(dst)*40503) % 1000
			binary.LittleEndian.PutUint32(buf, w+1)
		}
	}
	img := graph.BuildImage(a, attrSize, attr)

	of, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer of.Close()
	if err := img.Encode(of); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"fg-convert: %s vertices, %s edges, image %s (index %s in memory)\n",
		util.HumanCount(int64(img.NumV)),
		util.HumanCount(img.NumEdges),
		util.HumanBytes(img.DataSize()),
		util.HumanBytes(img.IndexMemory()),
	)
}
