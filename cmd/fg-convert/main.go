// Command fg-convert builds a FlashGraph image from a text edge list:
// the compact on-SSD representation (separate ID-sorted in-/out-edge
// list files) plus metadata, in one portable file. The expensive
// construction is amortized: FlashGraph uses a single image for every
// algorithm (§3.5.2).
//
// The conversion is out-of-core: edges stream from the input file
// into an external sort bounded by -mem, so edge lists far larger
// than RAM convert on commodity machines. On completion the tool
// reports the Table 2 "init time" numbers — elapsed time, edges/sec,
// and the builder's peak memory.
//
// With -reencode, -in is an existing image instead of an edge list and
// the tool rewrites it in the -encoding layout. The stored bytes are
// decoded straight into the target encoder (the image is opened
// file-backed), so converting between raw, delta, and block layouts
// never round-trips through an edge list and never materializes the
// graph in memory.
//
// Usage:
//
//	fg-convert -in twitter.el -out twitter.fg
//	fg-convert -in roads.el -out roads.fg -weights    # 4-byte edge weights
//	fg-convert -in huge.el -out huge.fg -mem 512      # 512MiB build budget
//	fg-convert -reencode -in twitter.fg -out twitter-block.fg -encoding block
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flashgraph"
	"flashgraph/internal/graph"
	"flashgraph/internal/ssd"
	"flashgraph/internal/util"
)

// dropOSCache syncs the finished image and asks the kernel to evict it
// from the page cache, so a subsequent fg-serve -direct run measures
// cold-device behavior instead of reading the builder's leftovers.
func dropOSCache(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Printf("drop-cache: %v", err)
		return
	}
	defer f.Close()
	if err := ssd.DropOSCache(f); err != nil {
		log.Printf("drop-cache: %v", err)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fg-convert: ")
	var (
		in         = flag.String("in", "", "input edge list (text)")
		out        = flag.String("out", "", "output image path")
		undirected = flag.Bool("undirected", false, "treat edges as undirected")
		encoding   = flag.String("encoding", "raw", "edge-list layout, raw | delta | block (delta stores sorted neighbor IDs as varint gaps; block is the 2D edge-block layout for the SpMV engine)")
		reencode   = flag.Bool("reencode", false, "treat -in as an existing image and rewrite it in the -encoding layout (no edge-list round trip)")
		weights    = flag.Bool("weights", false, "attach deterministic 4-byte edge weights (SSSP demos)")
		keepDupes  = flag.Bool("keep-duplicates", false, "keep duplicate edges and self loops")
		memMB      = flag.Int64("mem", 256, "builder memory budget (MiB) for the external sort")
		tmpDir     = flag.String("tmp", "", "directory for spilled sort runs (default system temp)")
		dropCache  = flag.Bool("drop-cache", false, "evict the written image from the OS page cache (fsync + fadvise) so serving it -direct starts cold")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		log.Fatal("need -in and -out")
	}
	enc, err := flashgraph.ParseEncoding(*encoding)
	if err != nil {
		log.Fatal(err)
	}

	if *reencode {
		start := time.Now()
		g, err := flashgraph.OpenGraphFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer g.Close()
		from := g.Encoding()
		if err := g.SaveFileAs(*out, enc); err != nil {
			log.Fatal(err)
		}
		outG, err := flashgraph.OpenGraphFile(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer outG.Close()
		fmt.Fprintf(os.Stderr,
			"fg-convert: re-encoded %s vertices, %s edges: %s (%s) -> %s (%s) in %v\n",
			util.HumanCount(int64(g.NumVertices())),
			util.HumanCount(g.NumEdges()),
			from, util.HumanBytes(g.SizeBytes()),
			enc, util.HumanBytes(outG.SizeBytes()),
			time.Since(start).Round(time.Millisecond),
		)
		if *dropCache {
			dropOSCache(*out)
		}
		return
	}

	attrSize := 0
	var attr flashgraph.AttrFunc
	if *weights {
		attrSize = 4
		attr = func(src, dst graph.VertexID, buf []byte) {
			w := (uint32(src)*2654435761 ^ uint32(dst)*40503) % 1000
			binary.LittleEndian.PutUint32(buf, w+1)
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	st, err := flashgraph.BuildGraphFile(*out, func(emit func(flashgraph.Edge) error) error {
		return graph.ScanEdgeList(f, emit)
	}, flashgraph.BuildOptions{
		Directed:       !*undirected,
		Encoding:       enc,
		AttrSize:       attrSize,
		Attr:           attr,
		MemBytes:       *memMB << 20,
		TmpDir:         *tmpDir,
		KeepDuplicates: *keepDupes,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"fg-convert: %s vertices, %s edges (%s read), image %s (index %s in memory)\n",
		util.HumanCount(int64(st.NumV)),
		util.HumanCount(st.NumEdges),
		util.HumanCount(st.InputEdges),
		util.HumanBytes(st.DataBytes),
		util.HumanBytes(st.IndexBytes),
	)
	fmt.Fprintf(os.Stderr,
		"fg-convert: built in %v (%.0f edges/s), peak builder memory %s, %d spilled runs\n",
		st.Elapsed.Round(time.Millisecond),
		st.EdgesPerSec(),
		util.HumanBytes(st.PeakMemBytes),
		st.Spills,
	)
	if *dropCache {
		dropOSCache(*out)
	}
}
