// Command fg-lint runs FlashGraph's project-specific static-analysis
// suite (internal/lint) over package patterns — a multichecker for the
// repo's compiler-checked invariants:
//
//	go run ./cmd/fg-lint ./...
//
// Run it from the repository root: import resolution follows the
// enclosing module. Exit status 0 means no findings; 1 means findings
// (each printed as file:line:col: analyzer: message); 2 means the
// packages failed to load or type-check.
//
// Suppressions carry a reason and are themselves linted:
//
//	//fg:allowfloat <reason>                 (detfloat only)
//	//fg:lint:ignore <analyzer> <reason>     (any analyzer)
package main

import (
	"flag"
	"fmt"
	"os"

	"flashgraph/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fg-lint [-only a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.ListPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	loader := lint.NewLoader()
	findings := 0
	for _, p := range pkgs {
		pkg, err := loader.LoadDir(p.Dir, p.Path, p.GoFiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, d := range lint.RunAnalyzers(pkg, analyzers) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "fg-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
